// Flow-level fluid simulator.
//
// Large-scale experiments (Figures 6-8) need flow completion times over
// thousands of flows on thousand-server topologies, where packet-level
// simulation is intractable (the paper used htsim on one topology size; we
// use packet-level simulation for the testbed-scale runs and this fluid
// model at scale). The fluid model assumes congestion control converges
// quickly to max-min fair rates at subflow granularity between flow arrival
// and departure events — the standard fluid approximation for
// MPTCP/TCP-fair networks. Each flow is split over the paths its routing
// scheme provides (k subflows for k-shortest-path + MPTCP, one path for
// ECMP + TCP); rates are recomputed by progressive filling at every arrival
// or departure.
//
// Dependencies (Flow::depends_on) gate flow release, which is how the
// application phase models (§5.4) express broadcast rounds and barriers.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/capacity.h"
#include "net/failures.h"
#include "net/graph.h"
#include "obs/sink.h"
#include "obs/telemetry.h"
#include "routing/path.h"
#include "traffic/flow.h"

namespace flattree {

// Supplies the subflow paths for a flow. Implementations typically wrap a
// PathCache (k-shortest-path routing) or an EcmpRouter (single hashed path).
using PathProvider =
    std::function<std::vector<Path>(NodeId src, NodeId dst,
                                    std::uint32_t flow_index)>;

struct FluidFlowResult {
  bool started{false};
  bool completed{false};
  double start_s{0.0};
  double finish_s{0.0};
  [[nodiscard]] double fct_s() const { return finish_s - start_s; }
};

// How per-flow rates derive from the flow's path set.
enum class RateModel : std::uint8_t {
  // Per-subflow max-min: every path ramps independently; the flow gets the
  // sum. Default — cheap enough to recompute per arrival/departure event,
  // and its biases apply equally to every topology being compared. (The
  // more faithful coupled-MPTCP model, solve_mptcp_model in lp/mcf.h,
  // embeds an LP and is reserved for the throughput-bound experiments.)
  kSubflow,
  // Equal-split flow-level max-min (static 1/k splitting).
  kEqualSplit,
};

struct FluidOptions {
  double max_time_s{1e6};  // simulation horizon; unfinished flows reported
  RateModel rate_model{RateModel::kSubflow};
  // Reuse the previous event's water-filling trace when re-allocating
  // (sim/fluid_incremental.h): bit-for-bit identical rates, O(affected
  // bottleneck levels) per event instead of O(network). Applies to the
  // kSubflow model only; kEqualSplit always solves from scratch.
  bool incremental{true};
  // Observability. When attached the simulator records fluid.* metrics
  // (rate-update iterations, max relative rate delta per update — the
  // convergence residual of the fluid model — FCTs, failure/refresh
  // counters) and emits flow-lifetime spans plus failure/refresh instants,
  // all stamped with simulated time. Disabled (all-null) by default.
  obs::ObsSink sink{};
};

// Coflow completion times over a simulated workload: for each flow group,
// the span from the earliest member start to the latest member finish (the
// application-level metric for shuffle jobs; see Flow::group).
[[nodiscard]] std::vector<CoflowStats> coflow_completion_times(
    const Workload& flows, const std::vector<FluidFlowResult>& results);

// Per-flow telemetry export (obs/telemetry.h): one FlowRecord per workload
// flow, in flow order. Completed flows report their full size and FCT;
// unfinished flows report zero delivered bytes (the fluid model has no
// partial-delivery accounting). `results` must be parallel to `flows`, as
// returned by run()/run_with_schedule(). This is the fluid half of the
// per-pair counter feed the demand estimator folds; the packet half is
// PacketSim::export_flow_records.
[[nodiscard]] std::vector<obs::FlowRecord> collect_flow_records(
    const Workload& flows, const std::vector<FluidFlowResult>& results);

// Called when the control plane refreshes routing state after a failure or
// recovery event (one repair lag after the event). Receives the currently
// degraded topology (node ids shared with the base graph; the reference
// stays valid until the next refresh or the end of the run) and returns the
// provider all subsequent path lookups use — typically a PathCache over the
// degraded graph, or a CompiledMode cache repaired incrementally via
// Controller::plan_repair.
using RoutingRefresh = std::function<PathProvider(const Graph& degraded)>;

// Observability counters for a scheduled (failure-injected) run.
struct ScheduleRunStats {
  std::uint32_t fail_events{0};
  std::uint32_t recover_events{0};
  std::uint32_t refreshes{0};    // routing-state refreshes performed
  std::uint32_t reroutes{0};     // flows whose path set actually changed
  std::uint32_t black_holed{0};  // flow lookups that found no route
};

class FluidSimulator {
 public:
  FluidSimulator(const Graph& graph, PathProvider provider,
                 FluidOptions options = FluidOptions{});

  // Event-driven FCT simulation for finite flows (bytes > 0).
  [[nodiscard]] std::vector<FluidFlowResult> run(const Workload& flows);

  // run() under a live failure schedule. At each event the failed elements'
  // capacity drops to zero immediately (flows crossing them stall — the
  // data plane breaks at once); `repair_lag_s` later the routing state
  // refreshes: `refresh` supplies a provider over the degraded topology and
  // every unfinished flow is re-pathed through it (flows whose pair is
  // disconnected keep their stalled paths until a recovery event restores a
  // route). Recovery events restore capacity the same way — data plane
  // first, routing one repair lag behind. A null `refresh` keeps the
  // original provider throughout (capacity changes only, no rerouting).
  [[nodiscard]] std::vector<FluidFlowResult> run_with_schedule(
      const Workload& flows, const FailureSchedule& schedule,
      double repair_lag_s, const RoutingRefresh& refresh,
      ScheduleRunStats* stats = nullptr);

  // Steady-state max-min rates (bits/s) for persistent flows: all flows
  // active simultaneously; returns the per-flow rate vector.
  [[nodiscard]] std::vector<double> measure_rates(const Workload& flows);

 private:
  const Graph* graph_;
  LogicalTopology topology_;
  PathProvider provider_;
  FluidOptions options_;
};

}  // namespace flattree
