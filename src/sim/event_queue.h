// Pooled discrete-event substrate for the packet simulator hot path.
//
// Three allocation-free building blocks replace the seed engine's
// std::priority_queue<Event> / std::deque<Packet> / std::set<uint32_t>:
//
//   EventQueue<Payload>   a 4-ary indexed min-heap over a preallocated
//                         event arena with freelist recycling. Pop order is
//                         the engine's total event order: (time, push
//                         sequence) strictly non-decreasing, independent of
//                         heap layout. Heap entries carry the (t, seq) key
//                         inline next to the slot index, so sift
//                         comparisons touch only the contiguous heap array
//                         (never the arena), and a payload is written
//                         exactly once (at push) and read exactly once (at
//                         pop). Handles carry a generation counter
//                         so cancel() of an already-recycled slot is a
//                         detectable no-op — the freelist can never vend a
//                         slot that still has a live handle observer
//                         mutating it.
//   RingQueue<T>          a power-of-two ring buffer with deque semantics
//                         (push_back/front/pop_front) and amortized-zero
//                         allocation; the per-pipe drop-tail queues.
//   SeqWindow             a sliding bitmap over out-of-order sequence
//                         numbers above the receiver's cumulative-ack
//                         point; word-granular front trimming keeps it
//                         proportional to the reorder window, not the
//                         stream length.
//
// All three are single-writer structures (one simulator shard owns its
// engine); cross-shard parallelism lives in ShardedPacketSim, which gives
// every shard a private engine and merges results commutatively.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace flattree::sim {

// 4-ary indexed min-heap over an arena of recycled slots. Payload must be
// movable. The queue is a strict total order: equal timestamps pop in push
// order (seq), so simulation results never depend on heap internals.
template <typename Payload>
class EventQueue {
 public:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  struct Handle {
    std::uint32_t slot{kNone};
    std::uint32_t generation{0};
  };

  EventQueue() = default;
  explicit EventQueue(std::size_t reserve) {
    arena_.reserve(reserve);
    heap_.reserve(reserve);
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  // Arena high-water mark: slots ever live at once (freelist recycling
  // means this is max concurrent events, not total events pushed).
  [[nodiscard]] std::size_t arena_slots() const { return arena_.size(); }
  // Sequence the next push will receive; doubles as total pushes so far.
  [[nodiscard]] std::uint64_t pushes() const { return next_seq_; }

  [[nodiscard]] double top_time() const { return heap_[0].t; }
  [[nodiscard]] const Payload& top() const {
    return arena_[heap_[0].slot].payload;
  }

  Handle push(double t, Payload payload) {
    const std::uint32_t slot = acquire(t);
    Slot& s = arena_[slot];
    s.payload = std::move(payload);
    return Handle{slot, s.generation};
  }

  // Vends the slot for an event at time `t` and returns its payload for the
  // caller to fill in place — one write instead of construct-then-move. The
  // payload may hold stale contents from a recycled slot; the caller must
  // assign every field. The reference is valid until the next push/emplace.
  Payload& emplace(double t) { return arena_[acquire(t)].payload; }

  // Pops the minimum (time, seq) event. Precondition: !empty().
  Payload pop(double* t = nullptr) {
    const std::uint32_t slot = heap_[0].slot;
    if (t != nullptr) *t = heap_[0].t;
    Payload out = std::move(arena_[slot].payload);
    remove_at(0);
    release(slot);
    return out;
  }

  // Removes a not-yet-popped event. Returns false if the handle is stale
  // (already popped or cancelled — possibly recycled since).
  bool cancel(Handle h) {
    if (h.slot >= arena_.size()) return false;
    Slot& s = arena_[h.slot];
    if (s.generation != h.generation || s.heap_pos == kNone) return false;
    remove_at(s.heap_pos);
    release(h.slot);
    return true;
  }

  // True while `h` refers to an event still queued.
  [[nodiscard]] bool live(Handle h) const {
    return h.slot < arena_.size() &&
           arena_[h.slot].generation == h.generation &&
           arena_[h.slot].heap_pos != kNone;
  }

 private:
  // Takes a slot off the freelist (or grows the arena) and links it into
  // the heap at time `t`. Sifting only rewrites heap positions, so the
  // slot's payload can be filled before or after the call.
  std::uint32_t acquire(double t) {
    std::uint32_t slot;
    if (free_head_ != kNone) {
      slot = free_head_;
      free_head_ = arena_[slot].next_free;
    } else {
      slot = static_cast<std::uint32_t>(arena_.size());
      arena_.emplace_back();
    }
    const std::uint32_t pos = static_cast<std::uint32_t>(heap_.size());
    arena_[slot].heap_pos = pos;
    heap_.push_back(Entry{t, next_seq_++, slot});
    sift_up(pos);
    return slot;
  }

  struct Slot {
    Payload payload{};
    std::uint32_t heap_pos{kNone};    // kNone = free
    std::uint32_t next_free{kNone};   // freelist link while free
    std::uint32_t generation{0};      // bumped on release
  };

  // One heap element: sort key inline so sifts compare within the
  // contiguous heap array instead of chasing slot indices into the arena.
  struct Entry {
    double t;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  [[nodiscard]] static bool before(const Entry& x, const Entry& y) {
    if (x.t != y.t) return x.t < y.t;
    return x.seq < y.seq;
  }

  void place(std::uint32_t pos, const Entry& e) {
    heap_[pos] = e;
    arena_[e.slot].heap_pos = pos;
  }

  void sift_up(std::uint32_t pos) {
    const Entry moving = heap_[pos];
    while (pos > 0) {
      const std::uint32_t parent = (pos - 1) >> 2;
      if (!before(moving, heap_[parent])) break;
      place(pos, heap_[parent]);
      pos = parent;
    }
    place(pos, moving);
  }

  void sift_down(std::uint32_t pos) {
    const Entry moving = heap_[pos];
    const std::uint32_t n = static_cast<std::uint32_t>(heap_.size());
    for (;;) {
      const std::uint32_t first_child = (pos << 2) + 1;
      if (first_child >= n) break;
      std::uint32_t best = first_child;
      const std::uint32_t last_child =
          first_child + 3 < n ? first_child + 3 : n - 1;
      for (std::uint32_t c = first_child + 1; c <= last_child; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], moving)) break;
      place(pos, heap_[best]);
      pos = best;
    }
    place(pos, moving);
  }

  // Unlinks heap_[pos], restoring the heap property around the hole.
  void remove_at(std::uint32_t pos) {
    const Entry last = heap_.back();
    heap_.pop_back();
    if (pos == heap_.size()) return;  // removed the tail element
    place(pos, last);
    if (pos > 0 && before(last, heap_[(pos - 1) >> 2])) {
      sift_up(pos);
    } else {
      sift_down(pos);
    }
  }

  void release(std::uint32_t slot) {
    Slot& s = arena_[slot];
    s.heap_pos = kNone;
    ++s.generation;
    s.next_free = free_head_;
    free_head_ = slot;
  }

  std::vector<Slot> arena_;
  std::vector<Entry> heap_;  // 4-ary heap order, keys inline
  std::uint32_t free_head_{kNone};
  std::uint64_t next_seq_{0};
};

// Power-of-two ring buffer with the std::deque surface the pipe queues
// use. Grows by doubling (amortized allocation-free); clear() keeps the
// storage for reuse.
template <typename T>
class RingQueue {
 public:
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  [[nodiscard]] T& front() { return buf_[head_]; }
  [[nodiscard]] const T& front() const { return buf_[head_]; }

  void push_back(const T& value) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & (buf_.size() - 1)] = value;
    ++size_;
  }

  void pop_front() {
    head_ = (head_ + 1) & (buf_.size() - 1);
    --size_;
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  void grow() {
    const std::size_t cap = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    }
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_{0};
  std::size_t size_{0};
};

// Sliding bitmap of out-of-order sequence numbers. Semantically a
// std::set<uint32_t> restricted to the access pattern of a cumulative-ack
// receiver: insert above the ack point, erase at the advancing ack point.
// Storage is one bit per sequence across the live reorder window; fully
// cleared leading words are trimmed as the window slides.
class SeqWindow {
 public:
  // Records `seq`; duplicates are ignored (set semantics).
  void insert(std::uint32_t seq) {
    const std::uint64_t w = seq >> 6;
    if (words_.empty()) {
      word0_ = w;
      words_.push_back(0);
    } else if (w < word0_) {
      words_.insert(words_.begin(), static_cast<std::size_t>(word0_ - w), 0);
      word0_ = w;
    } else if (w - word0_ >= words_.size()) {
      words_.resize(static_cast<std::size_t>(w - word0_) + 1, 0);
    }
    const std::uint64_t bit = 1ull << (seq & 63);
    std::uint64_t& word = words_[static_cast<std::size_t>(w - word0_)];
    if ((word & bit) == 0) {
      word |= bit;
      ++count_;
    }
  }

  // Removes `seq` if present; returns whether it was. The receiver calls
  // this with its advancing expected sequence, so erasure trims the front.
  bool erase(std::uint32_t seq) {
    const std::uint64_t w = seq >> 6;
    if (words_.empty() || w < word0_ || w - word0_ >= words_.size()) {
      return false;
    }
    const std::uint64_t bit = 1ull << (seq & 63);
    std::uint64_t& word = words_[static_cast<std::size_t>(w - word0_)];
    if ((word & bit) == 0) return false;
    word &= ~bit;
    --count_;
    std::size_t lead = 0;
    while (lead < words_.size() && words_[lead] == 0) ++lead;
    if (lead > 0) {
      words_.erase(words_.begin(),
                   words_.begin() + static_cast<std::ptrdiff_t>(lead));
      word0_ += lead;
    }
    return true;
  }

  [[nodiscard]] bool contains(std::uint32_t seq) const {
    const std::uint64_t w = seq >> 6;
    if (words_.empty() || w < word0_ || w - word0_ >= words_.size()) {
      return false;
    }
    return (words_[static_cast<std::size_t>(w - word0_)] >>
            (seq & 63)) & 1u;
  }

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }
  void clear() {
    words_.clear();
    word0_ = 0;
    count_ = 0;
  }

 private:
  std::vector<std::uint64_t> words_;
  std::uint64_t word0_{0};  // word index of words_[0] (seq / 64)
  std::size_t count_{0};
};

}  // namespace flattree::sim
