// ShardedPacketSim: testbed-size packet simulation across the exec pool.
//
// A packet-level run decomposes when its flow groups are *independent* —
// no two groups route over a common link (e.g. pod-local traffic in Clos
// mode: every path stays inside its pod). Each shard then owns a private
// PacketSim over the shared topology carrying only its group, and the
// union of shard results equals the monolithic simulation event-for-event
// (pinned by tests/test_packet_diff.cc), because events of disjoint groups
// never touch each other's state no matter how they interleave.
//
// Determinism contract (same as the obs layer's):
//   * shard s seeds its RNG from exec::task_seed(base_seed, s) — never
//     from thread ids or scheduling;
//   * shard results are collected by index (exec::parallel_map) and merged
//     in index order, so sums and FCT vectors are bit-identical for any
//     thread count;
//   * metrics flow through the commutative obs sink (counter add, gauge
//     set_max), so --metrics-out exports identical bytes across
//     --threads 1/2/8 (the obs_determinism_packet_scale gate).
// Groups that are NOT disjoint may still be sharded as an explicit
// approximation (cross-group queueing is not modeled); callers own that
// call and should say so where they report results.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "exec/pool.h"
#include "net/graph.h"
#include "net/rng.h"
#include "obs/sink.h"
#include "sim/packet.h"

namespace flattree {

// Index-order merge of the per-shard outcomes. Counter-like fields add;
// high-water fields take the max; FCTs concatenate in (shard, flow) order.
struct ShardedRunStats {
  std::uint64_t events_processed{0};
  std::uint64_t packets_dropped{0};
  std::uint64_t bytes_acked{0};
  std::uint64_t flows{0};
  std::uint64_t flows_completed{0};
  std::uint64_t heap_max{0};           // max over shards
  std::uint64_t arena_high_water{0};   // max over shards
  std::vector<double> fcts_s;          // completed flows, shard-major order
};

class ShardedPacketSim {
 public:
  // Populates shard `shard`'s simulator (set_network already done): add
  // flows, drawing any randomness from `rng` only.
  using ShardBuilder =
      std::function<void(std::uint32_t shard, PacketSim& sim, Rng& rng)>;

  ShardedPacketSim(const Graph& graph, PacketSimOptions options,
                   std::uint64_t base_seed);

  // Runs `shards` independent simulators to `horizon_s`, fanned across
  // `pool` (serial when null). Every shard attaches `sink`; the builder
  // must be safe to call concurrently for distinct shards.
  ShardedRunStats run(std::uint32_t shards, const ShardBuilder& builder,
                      double horizon_s, exec::ThreadPool* pool = nullptr,
                      const obs::ObsSink& sink = {}) const;

 private:
  const Graph* graph_;
  PacketSimOptions options_;
  std::uint64_t base_seed_;
};

}  // namespace flattree
