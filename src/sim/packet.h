// Packet-level discrete-event network simulator.
//
// This is the htsim-equivalent substrate for the testbed-scale experiments:
// store-and-forward switches with drop-tail output queues, full-duplex links
// with serialization + propagation delay, TCP Reno senders (slow start,
// AIMD, NewReno fast recovery, RTO with exponential backoff) and MPTCP with
// Linked-Increase (LIA) coupling across subflows. Routing is source-routed:
// every subflow carries its full path, exactly like the MAC-encoded source
// routes of §4.2.2.
//
// Run-time topology conversion (§4.3) is first-class: apply_conversion()
// swaps in a new realized graph and new subflow paths mid-run. Pipes
// (directional links) are identified by their node pair and persist across
// conversions; pipes whose cable was rewired drop their in-flight packets
// and, together with any pipe touched by the control-plane update, stall
// for the blackout window (OCS reconfiguration + rule updates, Table 3).
// Two blackout scopes model the paper's two operational styles:
//   kFullBlackout   all-at-once conversion — every switch's rules are
//                   rewritten, the whole fabric stalls (Figure 10)
//   kChangedOnly    gradual conversion — only rewired circuits stall;
//                   untouched pipes keep forwarding ("draining parts of the
//                   network incrementally", §4.3)
// Flows whose path set is unchanged by a conversion keep their congestion
// state (warm); re-pathed flows restart their subflows and recover through
// slow start — reproducing the 2-2.5 s re-convergence of Figure 10.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "net/failures.h"
#include "net/graph.h"
#include "obs/sink.h"
#include "obs/telemetry.h"
#include "routing/path.h"
#include "sim/event_queue.h"

namespace flattree {

// Event-engine selection. Both engines process the exact same event
// sequence — the event order is the total order (time, schedule sequence),
// independent of heap internals — so they are event-for-event equivalent
// (pinned by tests/test_packet_diff.cc). kReference is the seed engine
// (std::priority_queue over full Event records), kept as the differential
// oracle; kPooled is the production engine (4-ary indexed heap over a
// recycled event arena, sim/event_queue.h) and the default.
enum class PacketEngine : std::uint8_t { kPooled, kReference };

struct PacketSimOptions {
  double prop_delay_s{5e-6};
  std::uint32_t queue_packets{128};   // drop-tail depth per pipe
  std::uint32_t mtu_bytes{1500};
  std::uint32_t ack_bytes{64};
  double min_rto_s{0.02};
  double initial_rto_s{0.2};
  double max_rto_s{2.0};
  double init_cwnd{2.0};
  double initial_rtt_estimate_s{1e-3};
  bool mptcp_coupled{true};  // LIA; false = independent Reno per subflow
  PacketEngine engine{PacketEngine::kPooled};
};

enum class ConversionScope : std::uint8_t {
  kFullBlackout,  // every pipe stalls for the blackout window
  kChangedOnly,   // only created/rewired pipes stall
};

class PacketSim {
 public:
  using Engine = PacketEngine;  // PacketSim::Engine::kReference etc.

  explicit PacketSim(PacketSimOptions options = PacketSimOptions{});

  // Installs the network (pipes from every link of the realized graph,
  // one per direction). Must be called once before adding flows.
  void set_network(const Graph& graph);

  // Adds a flow; bytes = 0 means persistent (iPerf-style). `subflow_paths`
  // are full server-to-server node paths on the current network.
  std::uint32_t add_flow(std::uint32_t src_server, std::uint32_t dst_server,
                         double bytes, double start_s,
                         std::vector<Path> subflow_paths);

  // Run the event loop until simulated time t.
  void run_until(double t_s);

  // Topology conversion at the current simulation time: new graph, new
  // per-flow subflow paths (provider is called with each flow index), and
  // the control-plane blackout. Pipes present in both graphs persist (their
  // in-flight traffic survives under kChangedOnly); removed pipes drop
  // their queues; flows whose new path set equals their current one keep
  // their congestion state.
  void apply_conversion(
      const Graph& graph,
      const std::function<std::vector<Path>(std::uint32_t)>& paths_for_flow,
      double blackout_s,
      ConversionScope scope = ConversionScope::kFullBlackout);

  // Data-plane failure at the current simulation time: pipes absent from
  // `degraded_graph` die immediately (queues dropped) and black-hole every
  // packet still routed into them — no blackout, no re-pathing. Senders
  // keep retransmitting into the holes and collapse through RTO backoff,
  // exactly the pre-repair behaviour; routing catches up only when a later
  // apply_conversion() installs refreshed paths (the controller's repair,
  // one repair lag behind the failure).
  void apply_failure(const Graph& degraded_graph);

  // -- observability --------------------------------------------------------

  // Attaches the sink: caches metric handles (packet.drops, packet.fct_s,
  // packet.queue.depth_pkts, packet.cwnd_pkts, retransmit counters, ...) and
  // the tracer (flow-lifetime spans, conversion/failure instants) so the hot
  // path only pays a null-pointer check when observability is off. Call
  // before running; a default-constructed sink detaches.
  void attach_obs(const obs::ObsSink& sink);

  // Stats for the current schedule segment (the interval since the last
  // begin_segment() call). The driver in run_with_schedule() opens a new
  // segment at every failure/repair step so recovery-phase metrics do not
  // inherit pre-failure samples; the cumulative accessors below are
  // unaffected.
  struct SegmentStats {
    std::uint64_t packets_dropped{0};
    std::uint64_t events_processed{0};
    std::uint64_t rto_timeouts{0};
    std::uint64_t fast_retransmits{0};
    std::uint64_t flows_completed{0};
    std::uint64_t bytes_acked{0};
  };
  void begin_segment() { segment_ = SegmentStats{}; }
  [[nodiscard]] const SegmentStats& segment_stats() const { return segment_; }

  // -- metrics --------------------------------------------------------------

  [[nodiscard]] double now() const { return now_; }
  // The subflow paths currently installed for a flow (post-conversion they
  // reflect the newest path set).
  [[nodiscard]] const std::vector<Path>& flow_paths(std::uint32_t flow) const;
  [[nodiscard]] std::uint64_t flow_bytes_acked(std::uint32_t flow) const;
  [[nodiscard]] bool flow_completed(std::uint32_t flow) const;
  [[nodiscard]] double flow_start_time(std::uint32_t flow) const;
  [[nodiscard]] double flow_finish_time(std::uint32_t flow) const;
  [[nodiscard]] std::uint64_t total_bytes_acked() const;
  // Per-flow telemetry (obs/telemetry.h), one record per flow in flow
  // order. Bytes are the transport-acked count at the current simulated
  // time, so an in-progress flow reports its partial delivery — the packet
  // half of the per-pair counter feed the demand estimator folds.
  [[nodiscard]] std::vector<obs::FlowRecord> export_flow_records() const;
  [[nodiscard]] std::uint64_t packets_dropped() const { return drops_; }
  [[nodiscard]] std::uint64_t events_processed() const { return events_done_; }
  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }
  // Engine high-water marks: max events simultaneously queued, and the
  // pooled arena's slot count (equal to heap_max under kPooled; the
  // reference engine reports its priority_queue peak as both).
  [[nodiscard]] std::uint64_t heap_max() const { return heap_max_; }
  [[nodiscard]] std::uint64_t arena_high_water() const;

 private:
  // ---- data plane ----------------------------------------------------------
  struct Packet {
    std::uint32_t flow{0};
    std::uint32_t subflow{0};
    std::uint32_t seq{0};        // data: sequence; ack: cumulative ack
    std::uint32_t size{0};
    double send_time{0.0};       // data: tx time; ack: echoed tx time
    std::uint16_t hop{0};
    bool is_ack{false};
  };

  struct Pipe {
    double rate_bps{0.0};
    double blocked_until{0.0};  // control-plane blackout gate
    std::uint64_t queued_bytes{0};
    sim::RingQueue<Packet> queue;  // flat drop-tail ring, no per-packet alloc
    bool transmitting{false};
    bool dead{false};  // cable no longer exists in the current topology
  };

  struct Subflow {
    bool alive{true};  // false once a conversion replaced this subflow
    std::uint32_t flow{0};
    std::vector<std::uint32_t> fwd_pipes;  // data path
    std::vector<std::uint32_t> rev_pipes;  // ack path
    // sender state
    double cwnd{2.0};
    double ssthresh{1e9};
    std::uint32_t next_seq{0};
    std::uint32_t cum_acked{0};
    std::uint32_t dup_acks{0};
    double srtt{0.0};
    double rttvar{0.0};
    double rto{0.2};
    double last_send_time{0.0};
    // NewReno fast-recovery state: holes up to recover_point are
    // retransmitted one per partial ACK instead of one per RTO.
    bool in_recovery{false};
    std::uint32_t recover_point{0};
    // Retransmission timer: one outstanding kTimer event; progress pushes
    // rto_deadline forward and the handler re-arms instead of firing.
    bool timer_armed{false};
    double rto_deadline{0.0};
    // receiver state
    std::uint32_t expect_seq{0};
    sim::SeqWindow out_of_order;  // bitmap over the live reorder window
    // data-level bookkeeping: packets assigned to this subflow but not yet
    // cumulatively acked (returned to the flow pool on conversion).
    std::uint32_t inflight_assigned{0};
  };

  struct SimFlow {
    std::uint32_t src{0};
    std::uint32_t dst{0};
    std::int64_t total_packets{-1};  // -1 = persistent
    std::int64_t unassigned{0};      // packets not yet given to a subflow
    std::uint64_t packets_acked{0};
    std::uint64_t bytes_acked{0};
    double start_s{0.0};
    double finish_s{-1.0};
    bool started{false};
    bool done{false};
    std::vector<std::uint32_t> subflows;
    std::vector<Path> current_paths;  // for warm-restart comparison
  };

  enum class EventType : std::uint8_t {
    kArrival,     // packet reaches the node at the end of a pipe
    kPipeFree,    // pipe finished serializing; try the queue
    kTimer,       // RTO check for (flow, subflow)
    kFlowStart,
  };

  // What an event *is*; when it fires is the queue's business. Both
  // engines dispatch on the total order (time, schedule sequence) — the
  // tie-break is the monotone per-sim sequence number assigned by
  // schedule(), never heap insertion position, so equal-timestamp events
  // fire in scheduling order on either engine.
  struct EventPayload {
    EventType type{EventType::kArrival};
    std::uint32_t a{0};  // pipe / flow
    std::uint32_t b{0};  // subflow
    Packet packet;
  };

  // Reference-engine event record: payload plus its own (t, order) key for
  // std::priority_queue.
  struct Event {
    double t{0.0};
    std::uint64_t order{0};
    EventPayload payload;
    friend bool operator>(const Event& x, const Event& y) {
      if (x.t != y.t) return x.t > y.t;
      return x.order > y.order;
    }
  };

  // `packet` must not alias a payload inside the pooled queue's arena (the
  // push may grow it); run_until pops events by value, so handlers only
  // ever hold locals.
  void schedule(double t, EventType type, std::uint32_t a, std::uint32_t b,
                const Packet& packet);
  void schedule(double t, EventType type, std::uint32_t a, std::uint32_t b) {
    schedule(t, type, a, b, Packet{});
  }
  // Forced inline: the event loop calls this half a billion times per
  // long run, and the seed engine had the switch inlined in run_until.
  [[gnu::always_inline]] inline void dispatch(const EventPayload& event);
  // `packet` must not alias storage inside the target pipe's ring (the
  // push may grow it); every caller passes a stack-local copy.
  void enqueue_packet(std::uint32_t pipe, const Packet& packet);
  void pipe_try_send(std::uint32_t pipe);
  void handle_arrival(const EventPayload& event);
  void on_data_at_receiver(const Packet& packet);
  void on_ack_at_sender(const Packet& packet);
  void maybe_send(std::uint32_t flow_index);
  void subflow_send_packet(std::uint32_t flow_index, std::uint32_t sf_index,
                           std::uint32_t seq, bool is_retransmit);
  void arm_timer(std::uint32_t flow_index, std::uint32_t sf_index);
  void handle_timer(const EventPayload& event);
  void increase_cwnd(SimFlow& flow, Subflow& subflow);
  [[nodiscard]] std::uint32_t pipe_between(NodeId from, NodeId to) const;
  [[nodiscard]] std::vector<std::uint32_t> pipes_for(const Path& path) const;
  void start_flow(std::uint32_t flow_index);
  void attach_subflows(std::uint32_t flow_index, std::vector<Path> paths);

  // Diff-updates the pipe table for a new topology; returns via the
  // blackout parameters which pipes stall.
  void update_pipes(const Graph& graph, double blackout_s,
                    ConversionScope scope);

  void count_drop(std::uint64_t n = 1) {
    drops_ += n;
    segment_.packets_dropped += n;
    obs::add(c_drops_, n);
  }

  PacketSimOptions options_;
  double now_{0.0};
  std::uint64_t order_{0};
  std::uint64_t drops_{0};
  std::uint64_t events_done_{0};
  std::uint64_t heap_max_{0};
  bool network_set_{false};
  SegmentStats segment_;

  // Cached observability handles; null when detached (the default).
  obs::EventTracer* tracer_{nullptr};
  obs::Counter* c_drops_{nullptr};
  obs::Counter* c_rto_{nullptr};
  obs::Counter* c_fast_rtx_{nullptr};
  obs::Counter* c_flows_started_{nullptr};
  obs::Counter* c_flows_done_{nullptr};
  obs::Counter* c_conversions_{nullptr};
  obs::Counter* c_failures_{nullptr};
  obs::Counter* c_events_{nullptr};
  obs::Gauge* g_heap_max_{nullptr};
  obs::Gauge* g_arena_{nullptr};
  obs::Histogram* h_fct_{nullptr};
  obs::Histogram* h_queue_depth_{nullptr};
  obs::Histogram* h_cwnd_{nullptr};

  // Pooled engine (default): indexed heap over the recycled event arena.
  sim::EventQueue<EventPayload> queue_;
  // Reference engine: the seed-state priority queue of full Event records.
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::vector<Pipe> pipes_;
  // Directed node-pair -> pipe index for the current topology.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> pipe_map_;
  std::vector<SimFlow> flows_;
  std::vector<Subflow> subflows_;
};

// -- failure schedule driver -------------------------------------------------

struct PacketScheduleOptions {
  double repair_lag_s{0.2};     // failure event -> routing refresh delay
  double rule_blackout_s{0.0};  // switch-table rewrite stall at each repair
  ConversionScope scope{ConversionScope::kChangedOnly};
  // Optional repair planner: maps the active failure set to the post-repair
  // operating topology (e.g. Controller::plan_repair's converter-rewired
  // graph). Null = pure rerouting on degrade(base, active). Link ids in the
  // schedule always refer to `base`'s numbering; a planner that rewires must
  // keep node ids stable (every FlatTree realization does).
  std::function<Graph(const FailureSet& active)> planner;
};

// Drives `sim` through a failure schedule against the realized graph
// `base`: at each event the data plane degrades (or recovers) immediately
// via apply_failure(); repair_lag_s later the control plane installs
// refreshed routes via apply_conversion(). `repath` receives each flow
// index and the post-repair topology and returns the flow's new subflow
// paths — returning an empty set keeps the flow's current (possibly
// black-holed) paths, the fate of a disconnected pair. Finally runs the
// event loop to `horizon_s`.
void run_with_schedule(
    PacketSim& sim, const Graph& base, const FailureSchedule& schedule,
    const std::function<std::vector<Path>(std::uint32_t, const Graph&)>&
        repath,
    double horizon_s, const PacketScheduleOptions& options = {});

}  // namespace flattree
