// Parameter sets for the baseline topologies.
//
// ClosParams describes a generic 3-layer Clos (edge/aggregation/core) built
// from modular Pods, the starting point flat-tree converts from. The presets
// topo-1..topo-6 reproduce Table 2 of the paper; `testbed()` is the
// 20-switch/24-server example network of Figure 2/Figure 9; `fat_tree(k)` is
// the canonical k-ary fat-tree used in §2.1.
#pragma once

#include <cstdint>
#include <string>

namespace flattree {

struct ClosParams {
  std::uint32_t pods{0};
  std::uint32_t edge_per_pod{0};      // d in the paper
  std::uint32_t agg_per_pod{0};       // d/r in the paper
  std::uint32_t edge_uplinks{0};      // uplinks per edge switch (to aggs)
  std::uint32_t servers_per_edge{0};  // downlinks per edge switch
  std::uint32_t agg_uplinks{0};       // h in the paper (uplinks per agg)
  std::uint32_t cores{0};
  std::uint32_t core_ports{0};        // downlinks per core switch
  double link_bps{10e9};

  // r = edge switches per aggregation switch (d / (d/r)).
  [[nodiscard]] std::uint32_t r() const { return edge_per_pod / agg_per_pod; }
  [[nodiscard]] std::uint32_t total_edges() const { return pods * edge_per_pod; }
  [[nodiscard]] std::uint32_t total_aggs() const { return pods * agg_per_pod; }
  [[nodiscard]] std::uint32_t total_servers() const {
    return total_edges() * servers_per_edge;
  }
  [[nodiscard]] std::uint32_t total_switches() const {
    return total_edges() + total_aggs() + cores;
  }
  // Core connectors per edge-switch column: h/r in the paper (§3.2).
  [[nodiscard]] std::uint32_t core_connectors_per_edge() const {
    return agg_uplinks / r();
  }
  [[nodiscard]] double edge_oversubscription() const {
    return static_cast<double>(servers_per_edge) / edge_uplinks;
  }
  [[nodiscard]] double agg_oversubscription() const {
    const double down = static_cast<double>(edge_per_pod) * edge_uplinks /
                        agg_per_pod;
    return down / agg_uplinks;
  }

  // Throws std::invalid_argument if port counts do not balance.
  void validate() const;

  // Table 2 presets. topo-6 is interpreted with aggregation switches of
  // (16 up, 32 down): the printed "(32,16)" contradicts both the listed
  // oversubscription ratio (2) and the core port budget (see DESIGN.md).
  static ClosParams topo1();
  static ClosParams topo2();
  static ClosParams topo3();
  static ClosParams topo4();
  static ClosParams topo5();
  static ClosParams topo6();
  static ClosParams preset(const std::string& name);  // "topo-1".."topo-6"

  // The 4-Pod, 24-server testbed network of Figure 2 (1.5:1 oversubscribed).
  static ClosParams testbed();

  // Canonical k-ary fat-tree expressed as ClosParams (k even).
  static ClosParams fat_tree(std::uint32_t k);
};

}  // namespace flattree
