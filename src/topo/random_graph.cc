#include "topo/random_graph.h"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "net/rng.h"

namespace flattree {
namespace {

// Pairs the given port stubs uniformly at random into links.
//
// Constraints: no self-loop (same node) and no pair within the same
// forbidden group (group >= 0; -1 means unconstrained). Parallel links are
// avoided with a bounded number of random repair swaps; any residue is kept
// as a parallel link — the Graph is a multigraph and random regular graph
// models tolerate rare multi-edges.
struct Stub {
  NodeId node{};
  std::int32_t group{-1};
};

void pair_stubs(Graph& g, std::vector<Stub> stubs, double link_bps, Rng& rng) {
  if (stubs.size() % 2 != 0) stubs.pop_back();  // one port stays dark
  shuffle(stubs, rng);

  const auto conflicts = [&](const Stub& a, const Stub& b) {
    if (a.node == b.node) return true;
    return a.group >= 0 && a.group == b.group;
  };

  // Repair self-loops / same-group pairs by swapping with random partners.
  const std::size_t pairs = stubs.size() / 2;
  for (std::size_t attempt = 0; attempt < 50; ++attempt) {
    bool any_conflict = false;
    for (std::size_t i = 0; i < pairs; ++i) {
      Stub& a = stubs[2 * i];
      Stub& b = stubs[2 * i + 1];
      if (!conflicts(a, b)) continue;
      any_conflict = true;
      const std::size_t j = rng.next_below(pairs);
      if (j == i) continue;
      Stub& c = stubs[2 * j];
      Stub& d = stubs[2 * j + 1];
      // Swap b and d if it fixes this pair without breaking the other.
      if (!conflicts(a, d) && !conflicts(c, b)) std::swap(b, d);
    }
    if (!any_conflict) break;
  }

  // Best-effort de-duplication of parallel links via link swaps.
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  const auto key = [](const Stub& a, const Stub& b) {
    return std::make_pair(std::min(a.node.value(), b.node.value()),
                          std::max(a.node.value(), b.node.value()));
  };
  for (std::size_t attempt = 0; attempt < 50; ++attempt) {
    seen.clear();
    bool any_dup = false;
    for (std::size_t i = 0; i < pairs; ++i) {
      Stub& a = stubs[2 * i];
      Stub& b = stubs[2 * i + 1];
      if (!seen.insert(key(a, b)).second) {
        any_dup = true;
        const std::size_t j = rng.next_below(pairs);
        if (j == i) continue;
        Stub& c = stubs[2 * j];
        Stub& d = stubs[2 * j + 1];
        if (!conflicts(a, d) && !conflicts(c, b)) std::swap(b, d);
      }
    }
    if (!any_dup) break;
  }

  for (std::size_t i = 0; i < pairs; ++i) {
    const Stub& a = stubs[2 * i];
    const Stub& b = stubs[2 * i + 1];
    if (conflicts(a, b)) continue;  // drop irreparable stubs (rare)
    g.add_link(a.node, b.node, link_bps);
  }
}

}  // namespace

RandomGraphParams RandomGraphParams::from_clos(const ClosParams& clos) {
  RandomGraphParams p;
  p.switches = clos.total_switches();
  p.ports_per_switch = clos.edge_uplinks + clos.servers_per_edge;
  p.servers = clos.total_servers();
  p.link_bps = clos.link_bps;
  return p;
}

Graph build_random_graph(const RandomGraphParams& params) {
  if (params.switches == 0 || params.ports_per_switch == 0) {
    throw std::invalid_argument("random graph: empty switch budget");
  }
  if (params.servers > static_cast<std::uint64_t>(params.switches) *
                           params.ports_per_switch) {
    throw std::invalid_argument("random graph: more servers than ports");
  }
  Graph g;
  Rng rng{params.seed};

  std::vector<NodeId> servers;
  servers.reserve(params.servers);
  for (std::uint32_t s = 0; s < params.servers; ++s) {
    servers.push_back(g.add_node(NodeRole::kServer));
  }
  std::vector<NodeId> switches;
  switches.reserve(params.switches);
  for (std::uint32_t s = 0; s < params.switches; ++s) {
    switches.push_back(g.add_node(NodeRole::kEdge));
  }

  // Servers round-robin across switches (uniform distribution, §2.1).
  std::vector<std::uint32_t> free_ports(params.switches,
                                        params.ports_per_switch);
  for (std::uint32_t s = 0; s < params.servers; ++s) {
    const std::uint32_t sw = s % params.switches;
    g.add_link(servers[s], switches[sw], params.link_bps);
    --free_ports[sw];
  }

  std::vector<Stub> stubs;
  for (std::uint32_t sw = 0; sw < params.switches; ++sw) {
    for (std::uint32_t port = 0; port < free_ports[sw]; ++port) {
      stubs.push_back(Stub{switches[sw], -1});
    }
  }
  pair_stubs(g, std::move(stubs), params.link_bps, rng);
  return g;
}

Graph build_random_graph_from_clos(const ClosParams& clos,
                                   std::uint64_t seed) {
  clos.validate();
  Graph g;
  Rng rng{seed};

  std::vector<NodeId> servers;
  for (std::uint32_t s = 0; s < clos.total_servers(); ++s) {
    servers.push_back(g.add_node(NodeRole::kServer));
  }
  // Switches keep their Clos roles (for reporting) and port budgets.
  std::vector<NodeId> switches;
  std::vector<std::uint32_t> ports;
  for (std::uint32_t e = 0; e < clos.total_edges(); ++e) {
    switches.push_back(g.add_node(NodeRole::kEdge));
    ports.push_back(clos.edge_uplinks + clos.servers_per_edge);
  }
  const std::uint32_t agg_down =
      clos.edge_per_pod * clos.edge_uplinks / clos.agg_per_pod;
  for (std::uint32_t a = 0; a < clos.total_aggs(); ++a) {
    switches.push_back(g.add_node(NodeRole::kAgg));
    ports.push_back(agg_down + clos.agg_uplinks);
  }
  for (std::uint32_t c = 0; c < clos.cores; ++c) {
    switches.push_back(g.add_node(NodeRole::kCore));
    ports.push_back(clos.core_ports);
  }

  for (std::uint32_t s = 0; s < servers.size(); ++s) {
    const std::uint32_t sw = s % switches.size();
    if (ports[sw] == 0) {
      throw std::invalid_argument("random graph budget: switch out of ports");
    }
    g.add_link(servers[s], switches[sw], clos.link_bps);
    --ports[sw];
  }

  std::vector<Stub> stubs;
  for (std::uint32_t sw = 0; sw < switches.size(); ++sw) {
    for (std::uint32_t port = 0; port < ports[sw]; ++port) {
      stubs.push_back(Stub{switches[sw], -1});
    }
  }
  pair_stubs(g, std::move(stubs), clos.link_bps, rng);
  return g;
}

TwoStageParams TwoStageParams::from_clos(const ClosParams& clos) {
  TwoStageParams p;
  p.pods = clos.pods;
  p.switches_per_pod = clos.edge_per_pod + clos.agg_per_pod;
  p.ports_per_switch = clos.edge_uplinks + clos.servers_per_edge;
  p.cores = clos.cores;
  p.core_ports = clos.core_ports;
  p.servers = clos.total_servers();
  // Keep the Clos pod-external bandwidth: agg_per_pod * h uplinks per pod,
  // spread over the pod's switches.
  const std::uint32_t pod_uplinks = clos.agg_per_pod * clos.agg_uplinks;
  p.uplinks_per_switch =
      (pod_uplinks + p.switches_per_pod - 1) / p.switches_per_pod;
  p.link_bps = clos.link_bps;
  return p;
}

Graph build_two_stage_random_graph(const TwoStageParams& params) {
  if (params.pods == 0 || params.switches_per_pod == 0) {
    throw std::invalid_argument("two-stage: empty pod budget");
  }
  if (params.servers % params.pods != 0) {
    throw std::invalid_argument("two-stage: servers must divide across pods");
  }
  Graph g;
  Rng rng{params.seed};

  const std::uint32_t servers_per_pod = params.servers / params.pods;

  std::vector<NodeId> servers;
  for (std::uint32_t pod = 0; pod < params.pods; ++pod) {
    for (std::uint32_t s = 0; s < servers_per_pod; ++s) {
      servers.push_back(g.add_node(NodeRole::kServer, PodId{pod}));
    }
  }
  std::vector<std::vector<NodeId>> pod_switches(params.pods);
  for (std::uint32_t pod = 0; pod < params.pods; ++pod) {
    for (std::uint32_t s = 0; s < params.switches_per_pod; ++s) {
      pod_switches[pod].push_back(g.add_node(NodeRole::kEdge, PodId{pod}));
    }
  }
  std::vector<NodeId> cores;
  for (std::uint32_t c = 0; c < params.cores; ++c) {
    cores.push_back(g.add_node(NodeRole::kCore));
  }

  std::vector<Stub> global_stubs;
  for (std::uint32_t pod = 0; pod < params.pods; ++pod) {
    std::vector<std::uint32_t> free_ports(params.switches_per_pod,
                                          params.ports_per_switch);
    // Servers uniform within the pod (§2.1: "servers in each Pod are
    // distributed uniformly across switches in the Pod").
    for (std::uint32_t s = 0; s < servers_per_pod; ++s) {
      const std::uint32_t sw = s % params.switches_per_pod;
      g.add_link(servers[static_cast<std::size_t>(pod) * servers_per_pod + s],
                 pod_switches[pod][sw], params.link_bps);
      if (free_ports[sw] == 0) {
        throw std::invalid_argument("two-stage: switch out of ports (servers)");
      }
      --free_ports[sw];
    }
    // Reserve uplink ports for the global stage.
    for (std::uint32_t sw = 0; sw < params.switches_per_pod; ++sw) {
      for (std::uint32_t u = 0; u < params.uplinks_per_switch; ++u) {
        if (free_ports[sw] == 0) break;
        --free_ports[sw];
        global_stubs.push_back(
            Stub{pod_switches[pod][sw], static_cast<std::int32_t>(pod)});
      }
    }
    // Local random graph over the remaining ports.
    std::vector<Stub> local_stubs;
    for (std::uint32_t sw = 0; sw < params.switches_per_pod; ++sw) {
      for (std::uint32_t port = 0; port < free_ports[sw]; ++port) {
        local_stubs.push_back(Stub{pod_switches[pod][sw], -1});
      }
    }
    pair_stubs(g, std::move(local_stubs), params.link_bps, rng);
  }

  // Global stage: pods (as super-nodes, via reserved stubs) and cores form a
  // random graph. Same-pod pairs are forbidden; core switches take no
  // servers and participate with all their ports.
  for (std::uint32_t c = 0; c < params.cores; ++c) {
    for (std::uint32_t port = 0; port < params.core_ports; ++port) {
      global_stubs.push_back(Stub{cores[c], -1});
    }
  }
  pair_stubs(g, std::move(global_stubs), params.link_bps, rng);
  return g;
}

}  // namespace flattree
