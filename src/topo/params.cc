#include "topo/params.h"

#include <stdexcept>

namespace flattree {

void ClosParams::validate() const {
  if (pods == 0 || edge_per_pod == 0 || agg_per_pod == 0 || cores == 0) {
    throw std::invalid_argument("ClosParams: zero-sized layer");
  }
  if (edge_per_pod % agg_per_pod != 0) {
    throw std::invalid_argument(
        "ClosParams: edge_per_pod must be a multiple of agg_per_pod");
  }
  // Edge uplinks must land evenly on the pod's aggregation switches.
  if (edge_uplinks % agg_per_pod != 0) {
    throw std::invalid_argument(
        "ClosParams: edge_uplinks must be a multiple of agg_per_pod");
  }
  // Aggregation downlinks implied by the edge layer.
  const std::uint64_t agg_down =
      static_cast<std::uint64_t>(edge_per_pod) * edge_uplinks / agg_per_pod;
  if (agg_down == 0) {
    throw std::invalid_argument("ClosParams: aggregation layer has no downlinks");
  }
  // Core port budget must match aggregate uplinks exactly.
  const std::uint64_t agg_up_total =
      static_cast<std::uint64_t>(pods) * agg_per_pod * agg_uplinks;
  const std::uint64_t core_down_total =
      static_cast<std::uint64_t>(cores) * core_ports;
  if (agg_up_total != core_down_total) {
    throw std::invalid_argument(
        "ClosParams: aggregation uplinks (" + std::to_string(agg_up_total) +
        ") != core downlinks (" + std::to_string(core_down_total) + ")");
  }
  // The consecutive-group wiring wraps per-pod uplinks around the core
  // array; every core is covered only if the per-pod uplink count is a
  // whole multiple of the core count (fewer uplinks than cores would leave
  // cores unwired).
  if ((static_cast<std::uint64_t>(agg_per_pod) * agg_uplinks) % cores != 0) {
    throw std::invalid_argument(
        "ClosParams: per-pod uplinks must be a multiple of the core count");
  }
  if (agg_uplinks % r() != 0) {
    throw std::invalid_argument(
        "ClosParams: agg_uplinks must be a multiple of r for flat-tree wiring");
  }
  if (link_bps <= 0) throw std::invalid_argument("ClosParams: bad link rate");
}

ClosParams ClosParams::topo1() {
  return ClosParams{/*pods=*/16, /*edge_per_pod=*/8, /*agg_per_pod=*/8,
                    /*edge_uplinks=*/8, /*servers_per_edge=*/32,
                    /*agg_uplinks=*/8, /*cores=*/64, /*core_ports=*/16};
}

ClosParams ClosParams::topo2() {
  return ClosParams{12, 6, 6, 6, 24, 6, 36, 12};
}

ClosParams ClosParams::topo3() {
  return ClosParams{16, 8, 8, 8, 64, 8, 64, 16};
}

ClosParams ClosParams::topo4() {
  return ClosParams{8, 16, 8, 8, 32, 16, 32, 32};
}

ClosParams ClosParams::topo5() {
  return ClosParams{8, 16, 16, 16, 32, 8, 64, 16};
}

ClosParams ClosParams::topo6() {
  return ClosParams{8, 16, 8, 16, 32, 16, 32, 32};
}

ClosParams ClosParams::preset(const std::string& name) {
  if (name == "topo-1") return topo1();
  if (name == "topo-2") return topo2();
  if (name == "topo-3") return topo3();
  if (name == "topo-4") return topo4();
  if (name == "topo-5") return topo5();
  if (name == "topo-6") return topo6();
  throw std::invalid_argument("unknown Clos preset: " + name);
}

ClosParams ClosParams::testbed() {
  return ClosParams{/*pods=*/4, /*edge_per_pod=*/2, /*agg_per_pod=*/2,
                    /*edge_uplinks=*/2, /*servers_per_edge=*/3,
                    /*agg_uplinks=*/2, /*cores=*/4, /*core_ports=*/4};
}

ClosParams ClosParams::fat_tree(std::uint32_t k) {
  if (k < 2 || k % 2 != 0) {
    throw std::invalid_argument("fat_tree: k must be even and >= 2");
  }
  const std::uint32_t half = k / 2;
  return ClosParams{/*pods=*/k, /*edge_per_pod=*/half, /*agg_per_pod=*/half,
                    /*edge_uplinks=*/half, /*servers_per_edge=*/half,
                    /*agg_uplinks=*/half, /*cores=*/half * half,
                    /*core_ports=*/k};
}

}  // namespace flattree
