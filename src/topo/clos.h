// Generic 3-layer Clos / fat-tree builder (Figure 2b, Table 2).
#pragma once

#include "net/graph.h"
#include "topo/params.h"

namespace flattree {

// Builds the Clos network described by `params`:
//  * each Pod is a complete bipartite edge/aggregation fabric (with parallel
//    links when edge_uplinks > agg_per_pod),
//  * aggregation switch with in-pod index i wires its h uplinks to cores
//    (i*h + u) mod cores, u = 0..h-1 — the consecutive-group pattern of
//    Figure 4a — so all Pods see the same core groups,
//  * every edge switch carries servers_per_edge servers.
// Node creation order is: all servers (pod-major, edge-major), all edge
// switches (pod-major), all aggregation switches (pod-major), all cores, so
// index_in_role is globally meaningful for each layer.
[[nodiscard]] Graph build_clos(const ClosParams& params);

}  // namespace flattree
