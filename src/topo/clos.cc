#include "topo/clos.h"

#include <vector>

namespace flattree {

Graph build_clos(const ClosParams& p) {
  p.validate();
  Graph g;

  std::vector<NodeId> servers;
  servers.reserve(p.total_servers());
  std::vector<NodeId> edges;
  edges.reserve(p.total_edges());
  std::vector<NodeId> aggs;
  aggs.reserve(p.total_aggs());
  std::vector<NodeId> cores;
  cores.reserve(p.cores);

  for (std::uint32_t pod = 0; pod < p.pods; ++pod) {
    for (std::uint32_t e = 0; e < p.edge_per_pod; ++e) {
      for (std::uint32_t s = 0; s < p.servers_per_edge; ++s) {
        servers.push_back(g.add_node(NodeRole::kServer, PodId{pod}));
      }
    }
  }
  for (std::uint32_t pod = 0; pod < p.pods; ++pod) {
    for (std::uint32_t e = 0; e < p.edge_per_pod; ++e) {
      edges.push_back(g.add_node(NodeRole::kEdge, PodId{pod}));
    }
  }
  for (std::uint32_t pod = 0; pod < p.pods; ++pod) {
    for (std::uint32_t a = 0; a < p.agg_per_pod; ++a) {
      aggs.push_back(g.add_node(NodeRole::kAgg, PodId{pod}));
    }
  }
  for (std::uint32_t c = 0; c < p.cores; ++c) {
    cores.push_back(g.add_node(NodeRole::kCore));
  }

  // Server <-> edge.
  for (std::uint32_t e = 0; e < p.total_edges(); ++e) {
    for (std::uint32_t s = 0; s < p.servers_per_edge; ++s) {
      g.add_link(servers[static_cast<std::size_t>(e) * p.servers_per_edge + s],
                 edges[e], p.link_bps);
    }
  }

  // Edge <-> agg, complete bipartite within the pod, uplinks spread evenly.
  const std::uint32_t links_per_pair = p.edge_uplinks / p.agg_per_pod;
  for (std::uint32_t pod = 0; pod < p.pods; ++pod) {
    for (std::uint32_t e = 0; e < p.edge_per_pod; ++e) {
      const NodeId edge = edges[pod * p.edge_per_pod + e];
      for (std::uint32_t a = 0; a < p.agg_per_pod; ++a) {
        const NodeId agg = aggs[pod * p.agg_per_pod + a];
        for (std::uint32_t l = 0; l < links_per_pair; ++l) {
          g.add_link(edge, agg, p.link_bps);
        }
      }
    }
  }

  // Agg <-> core: Figure 4a consecutive groups, identical across pods.
  for (std::uint32_t pod = 0; pod < p.pods; ++pod) {
    for (std::uint32_t a = 0; a < p.agg_per_pod; ++a) {
      const NodeId agg = aggs[pod * p.agg_per_pod + a];
      for (std::uint32_t u = 0; u < p.agg_uplinks; ++u) {
        const std::uint32_t core =
            (a * p.agg_uplinks + u) % p.cores;
        g.add_link(agg, cores[core], p.link_bps);
      }
    }
  }

  return g;
}

}  // namespace flattree
