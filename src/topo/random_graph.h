// Random graph (Jellyfish-style) and two-stage random graph builders (§2.1).
//
// Both builders consume the same device budget as a Clos network: the same
// switches (with the same port counts) and the same servers, re-wired. This
// is exactly the comparison the paper's Table 1 makes.
#pragma once

#include <cstdint>

#include "net/graph.h"
#include "topo/params.h"

namespace flattree {

struct RandomGraphParams {
  std::uint32_t switches{0};
  std::uint32_t ports_per_switch{0};
  std::uint32_t servers{0};
  double link_bps{10e9};
  std::uint64_t seed{1};

  // Uses every switch of the Clos device budget with a uniform port count
  // equal to the maximum port count in the budget is NOT what the paper
  // does; it reuses each switch with its own port count. This helper takes
  // the simpler uniform view used in §2.1, where all fat-tree switches have
  // k ports.
  static RandomGraphParams from_clos(const ClosParams& clos);
};

// Uniform random regular-ish graph: servers are attached round-robin across
// switches, then all remaining switch ports are paired uniformly at random
// (no self-loops; parallel links avoided by local rewiring where possible).
[[nodiscard]] Graph build_random_graph(const RandomGraphParams& params);

// Random graph over the *exact* per-device port budget of a Clos network:
// edge switches keep edge port counts, aggregation and core switches keep
// theirs; servers are spread round-robin over all switches and every
// remaining port is wired uniformly at random. This is the device-faithful
// comparison used for Figure 8 (random graph vs flat-tree on topo-1 devices).
[[nodiscard]] Graph build_random_graph_from_clos(const ClosParams& clos,
                                                 std::uint64_t seed);

struct TwoStageParams {
  std::uint32_t pods{0};
  std::uint32_t switches_per_pod{0};
  std::uint32_t ports_per_switch{0};
  std::uint32_t uplinks_per_switch{0};  // ports reserved for the global stage
  std::uint32_t cores{0};
  std::uint32_t core_ports{0};
  std::uint32_t servers{0};  // distributed uniformly across pod switches
  double link_bps{10e9};
  std::uint64_t seed{1};

  static TwoStageParams from_clos(const ClosParams& clos);
};

// Two-stage random graph (§2.1): each Pod's switches form a local random
// graph; the Pods (as super-nodes, via their reserved uplink ports) and the
// core switches form a second-stage random graph. Core switches take no
// servers.
[[nodiscard]] Graph build_two_stage_random_graph(const TwoStageParams& params);

}  // namespace flattree
