// Hostile, production-shaped workload generators for the scenario battery.
//
// The paper's evaluation runs uniform and locality mixes; this module opens
// the adversarial workloads the scenario DSL (src/scenario/) drives the
// fabric through:
//
//   * incast_traffic      HPCC-style RDMA incast: synchronized heavy fan-in
//                         onto one aggregator per group with heavy-tailed
//                         (bounded-Pareto) response sizes — the classic
//                         many-to-one microburst that stresses the edge
//                         uplinks of an oversubscribed Clos far harder than
//                         a flat fabric's side circuits.
//   * tenant_class_traffic QJump-style mixed-criticality tenant class: one
//                         class of Poisson flows with a locality profile, an
//                         optional hot-Pod concentration, and bounded-Pareto
//                         sizes. Scenarios compose several classes (each
//                         with its own latency SLO) into one workload.
//   * three_tier_traffic  A front-end -> cache -> storage request fan:
//                         every request is a dependency-chained flow group
//                         (request, hit/miss fetch, replies), the
//                         "millions of users" serving shape whose per-tier
//                         locality stresses Clos vs global mode differently.
//
// All generators are pure functions of their parameter struct (single Rng
// stream seeded from params.seed), so scenario summaries are byte-identical
// across runs and thread counts. Parameter structs validate like the trace
// generators (std::invalid_argument on nonsense).
#pragma once

#include <cstdint>

#include "net/rng.h"
#include "traffic/flow.h"

namespace flattree {

struct IncastParams {
  std::uint32_t num_servers{0};
  // >0 enables Pod-aware placement (pod_local groups); typically
  // servers_per_edge * edge_per_pod of the Clos layout.
  std::uint32_t servers_per_pod{0};
  std::uint32_t groups{8};    // independent incast groups
  std::uint32_t fanin{16};    // senders per group
  std::uint32_t requests{4};  // synchronized request epochs per group
  double period_s{0.25};      // epoch spacing
  double mean_bytes{1e6};     // mean response size
  double alpha{1.3};          // Pareto tail index (> 1)
  double max_bytes{1e9};      // tail cap (bounded Pareto)
  bool pod_local{false};      // keep every group inside one Pod
  double start_s{0.0};
  std::uint64_t seed{7};
};

// Group g's aggregator and senders are placed deterministically (groups
// rotate around the fabric); at each epoch every sender of the group opens
// one flow to the aggregator simultaneously — the synchronized fan-in.
[[nodiscard]] Workload incast_traffic(const IncastParams& params);

struct TenantClassParams {
  std::uint32_t num_servers{0};
  std::uint32_t servers_per_rack{1};
  std::uint32_t servers_per_pod{1};
  double duration_s{1.0};
  double flows_per_s{500.0};
  double mean_bytes{1e6};
  double alpha{1.6};         // Pareto tail index (> 1)
  double max_bytes{1e9};     // tail cap
  double intra_rack_frac{0.0};
  double intra_pod_frac{0.0};  // of total (not of remainder)
  // >= 0: hot_pod_frac of the flows send to a uniform server of this Pod
  // (the hot-Pod locality skew); the rest follow the locality mix above.
  std::int32_t hot_pod{-1};
  double hot_pod_frac{0.0};
  double start_s{0.0};
  std::uint64_t seed{7};
};

[[nodiscard]] Workload tenant_class_traffic(const TenantClassParams& params);

struct ThreeTierParams {
  std::uint32_t num_servers{0};
  double duration_s{1.0};
  double requests_per_s{200.0};
  double frontend_frac{0.25};  // first servers are front-ends
  double cache_frac{0.25};     // next servers are caches; rest is storage
  double request_bytes{2e4};
  double cache_reply_bytes{2e5};
  double storage_reply_bytes{2e6};
  double miss_frac{0.3};       // cache misses fetch from storage
  double think_s{0.001};       // service time between chain hops
  double start_s{0.0};
  std::uint64_t seed{7};
};

// One request: frontend -> cache (request_bytes); on a hit the cache
// replies (cache_reply_bytes); on a miss the cache fetches from storage
// (request_bytes out, storage_reply_bytes back) before replying. Each hop
// depends on the previous flow plus think_s; the flows of one request share
// a coflow group, so group completion time is the user-visible latency.
[[nodiscard]] Workload three_tier_traffic(const ThreeTierParams& params);

}  // namespace flattree
