#include "traffic/traces.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace flattree {
namespace {

// Pareto xm for a target mean: mean = alpha * xm / (alpha - 1).
double pareto_xm(double mean, double alpha) {
  return mean * (alpha - 1) / alpha;
}

// Destination draw with the shared locality semantics: intra-rack with
// probability `rack_frac`, intra-Pod (cross-rack) with `pod_frac`, the
// rest inter-Pod. Identical logic to generate_trace's inline version.
std::uint32_t pick_dst(std::uint32_t src, std::uint32_t servers,
                       std::uint32_t per_rack, std::uint32_t per_pod,
                       double rack_frac, double pod_frac, Rng& rng) {
  const std::uint32_t rack = src / per_rack;
  const std::uint32_t pod = src / per_pod;
  const double locality = rng.next_double();
  std::uint32_t dst = src;
  if (locality < rack_frac && per_rack > 1) {
    while (dst == src) {
      dst = rack * per_rack +
            static_cast<std::uint32_t>(rng.next_below(per_rack));
    }
  } else if (locality < rack_frac + pod_frac && per_pod > per_rack) {
    do {
      dst = pod * per_pod +
            static_cast<std::uint32_t>(rng.next_below(per_pod));
    } while (dst / per_rack == rack);
  } else {
    do {
      dst = static_cast<std::uint32_t>(rng.next_below(servers));
    } while (dst / per_pod == pod);
  }
  return dst;
}

double lerp(double a, double b, double t) { return a + (b - a) * t; }

}  // namespace

TraceParams TraceParams::hadoop1() {
  TraceParams p;
  p.name = "Hadoop-1";
  // Shuffle-dominated, network-wide: locality is whatever uniform random
  // selection gives (tiny intra-rack, small intra-Pod).
  p.intra_rack_frac = 0.02;
  p.intra_pod_frac = 0.08;
  p.mean_flow_bytes = 10e6;
  p.pareto_alpha = 1.3;
  p.flows_per_s = 1500;
  return p;
}

TraceParams TraceParams::hadoop2() {
  TraceParams p;
  p.name = "Hadoop-2";
  p.intra_rack_frac = 0.757;  // §5.2: 75.7% intra-rack
  p.intra_pod_frac = 0.24;    // "almost all the remaining traffic is intra-Pod"
  p.mean_flow_bytes = 2e6;
  p.pareto_alpha = 1.5;
  p.flows_per_s = 2000;
  return p;
}

TraceParams TraceParams::web() {
  TraceParams p;
  p.name = "Web";
  p.intra_rack_frac = 0.01;  // "a tiny amount of intra-rack traffic"
  p.intra_pod_frac = 0.77;   // ~77% of total traffic stays in the Pod
  p.mean_flow_bytes = 0.2e6;
  p.pareto_alpha = 1.8;
  p.flows_per_s = 4000;
  return p;
}

TraceParams TraceParams::cache() {
  TraceParams p;
  p.name = "Cache";
  p.intra_rack_frac = 0.002;  // "almost zero intra-rack traffic"
  p.intra_pod_frac = 0.882;   // ~88% intra-Pod; higher volume than Web
  p.mean_flow_bytes = 0.5e6;
  p.pareto_alpha = 1.6;
  p.flows_per_s = 6000;
  return p;
}

Workload generate_trace(const ClosParams& layout, const TraceParams& params) {
  if (params.intra_rack_frac < 0 || params.intra_pod_frac < 0 ||
      params.intra_rack_frac + params.intra_pod_frac > 1.0 + 1e-9) {
    throw std::invalid_argument("trace: locality fractions out of range");
  }
  if (params.duration_s <= 0 || params.flows_per_s <= 0) {
    throw std::invalid_argument("trace: bad rate or duration");
  }
  const std::uint32_t servers = layout.total_servers();
  const std::uint32_t per_rack = layout.servers_per_edge;
  const std::uint32_t per_pod = per_rack * layout.edge_per_pod;
  if (servers < 2 * per_pod) {
    throw std::invalid_argument("trace: need at least 2 pods of servers");
  }

  Rng rng{params.seed};
  // Pareto xm chosen so the mean matches: mean = alpha*xm/(alpha-1).
  const double xm =
      params.mean_flow_bytes * (params.pareto_alpha - 1) / params.pareto_alpha;

  Workload flows;
  double t = 0;
  for (;;) {
    t += rng.next_exponential(params.flows_per_s);
    if (t >= params.duration_s) break;
    const std::uint32_t src =
        static_cast<std::uint32_t>(rng.next_below(servers));
    const std::uint32_t rack = src / per_rack;
    const std::uint32_t pod = src / per_pod;

    const double locality = rng.next_double();
    std::uint32_t dst = src;
    if (locality < params.intra_rack_frac && per_rack > 1) {
      while (dst == src) {
        dst = rack * per_rack +
              static_cast<std::uint32_t>(rng.next_below(per_rack));
      }
    } else if (locality < params.intra_rack_frac + params.intra_pod_frac &&
               per_pod > per_rack) {
      // Intra-Pod, different rack.
      do {
        dst = pod * per_pod +
              static_cast<std::uint32_t>(rng.next_below(per_pod));
      } while (dst / per_rack == rack);
    } else {
      // Inter-Pod.
      do {
        dst = static_cast<std::uint32_t>(rng.next_below(servers));
      } while (dst / per_pod == pod);
    }

    Flow flow;
    flow.src = src;
    flow.dst = dst;
    flow.bytes =
        std::min(rng.next_pareto(params.pareto_alpha, xm), 1e10);  // cap tail
    flow.start_s = t;
    flows.push_back(flow);
  }
  if (flows.empty()) {
    throw std::invalid_argument("trace: duration too short for any arrival");
  }
  return flows;
}

Workload generate_modulated_trace(const ClosParams& layout,
                                  const ModulatedTraceParams& params) {
  const auto check = [](const TraceParams& p, const char* which) {
    if (p.intra_rack_frac < 0 || p.intra_pod_frac < 0 ||
        p.intra_rack_frac + p.intra_pod_frac > 1.0 + 1e-9) {
      throw std::invalid_argument(
          std::string("modulated trace: ") + which +
          " locality fractions out of range");
    }
    if (p.flows_per_s <= 0 || p.mean_flow_bytes <= 0 || p.pareto_alpha <= 1) {
      throw std::invalid_argument(std::string("modulated trace: ") + which +
                                  " rate/size parameters out of range");
    }
  };
  check(params.low, "low");
  check(params.high, "high");
  if (params.duration_s <= 0) {
    throw std::invalid_argument("modulated trace: duration must be positive");
  }
  if (params.shape != ModulatedTraceParams::Shape::kRamp &&
      params.period_s <= 0) {
    throw std::invalid_argument("modulated trace: period must be positive");
  }
  const std::uint32_t servers = layout.total_servers();
  const std::uint32_t per_rack = layout.servers_per_edge;
  const std::uint32_t per_pod = per_rack * layout.edge_per_pod;
  if (servers < 2 * per_pod) {
    throw std::invalid_argument("modulated trace: need at least 2 pods");
  }

  const auto blend_at = [&](double t) -> double {
    switch (params.shape) {
      case ModulatedTraceParams::Shape::kRamp:
        return t / params.duration_s;
      case ModulatedTraceParams::Shape::kSine:
        return 0.5 * (1.0 - std::cos(2.0 * 3.14159265358979323846 * t /
                                     params.period_s));
      case ModulatedTraceParams::Shape::kSquare:
        return static_cast<std::uint64_t>(t / (0.5 * params.period_s)) % 2 ==
                       0
                   ? 0.0
                   : 1.0;
    }
    return 0.0;
  };

  Rng rng{params.seed};
  // Time-varying Poisson arrivals via thinning against the peak rate: the
  // accept draw happens for every candidate, so the stream stays
  // deterministic whatever a(t) does.
  const double peak_rate =
      std::max(params.low.flows_per_s, params.high.flows_per_s);
  Workload flows;
  double t = 0;
  for (;;) {
    t += rng.next_exponential(peak_rate);
    if (t >= params.duration_s) break;
    const double a = blend_at(t);
    const double rate =
        lerp(params.low.flows_per_s, params.high.flows_per_s, a);
    const double accept = rng.next_double();
    if (accept >= rate / peak_rate) continue;

    const double rack_frac =
        lerp(params.low.intra_rack_frac, params.high.intra_rack_frac, a);
    const double pod_frac =
        lerp(params.low.intra_pod_frac, params.high.intra_pod_frac, a);
    const double mean =
        lerp(params.low.mean_flow_bytes, params.high.mean_flow_bytes, a);
    const double alpha =
        lerp(params.low.pareto_alpha, params.high.pareto_alpha, a);

    Flow flow;
    flow.src = static_cast<std::uint32_t>(rng.next_below(servers));
    flow.dst = pick_dst(flow.src, servers, per_rack, per_pod, rack_frac,
                        pod_frac, rng);
    flow.bytes = std::min(rng.next_pareto(alpha, pareto_xm(mean, alpha)),
                          1e10);
    flow.start_s = t;
    flows.push_back(flow);
  }
  if (flows.empty()) {
    throw std::invalid_argument(
        "modulated trace: duration too short for any arrival");
  }
  return flows;
}

Workload generate_tenant_churn(const ClosParams& layout,
                               const TenantChurnParams& params) {
  if (params.duration_s <= 0 || params.arrivals_per_s <= 0 ||
      params.mean_lifetime_s <= 0 || params.flows_per_s <= 0 ||
      params.mean_flow_bytes <= 0 || params.pareto_alpha <= 1 ||
      params.racks_per_tenant == 0) {
    throw std::invalid_argument("tenant churn: parameters out of range");
  }
  if (params.rack_local_frac < 0 || params.rack_local_frac > 1 ||
      params.pod_local_frac < 0 || params.pod_local_frac > 1) {
    throw std::invalid_argument("tenant churn: locality fractions out of range");
  }
  const std::uint32_t servers = layout.total_servers();
  const std::uint32_t per_rack = layout.servers_per_edge;
  const std::uint32_t per_pod = per_rack * layout.edge_per_pod;
  const std::uint32_t racks = layout.total_edges();
  if (servers < 2 * per_pod) {
    throw std::invalid_argument("tenant churn: need at least 2 pods");
  }
  const std::uint32_t span_racks =
      std::min(params.racks_per_tenant, racks);
  const double xm = pareto_xm(params.mean_flow_bytes, params.pareto_alpha);

  Rng rng{params.seed};
  Workload flows;
  std::uint32_t tenant = 0;
  double arrive = 0;
  for (;;) {
    arrive += rng.next_exponential(params.arrivals_per_s);
    if (arrive >= params.duration_s) break;
    const double depart = std::min(
        arrive + rng.next_exponential(1.0 / params.mean_lifetime_s),
        params.duration_s);
    // Placement rotates around the fabric; type cycles rack-local ->
    // Pod-local -> network-wide in arrival order.
    const std::uint32_t first_rack = (tenant * span_racks) % racks;
    const std::uint32_t type = tenant % 3;
    ++tenant;

    const auto span_server = [&]() -> std::uint32_t {
      const std::uint32_t rack =
          (first_rack + static_cast<std::uint32_t>(
                            rng.next_below(span_racks))) %
          racks;
      return rack * per_rack +
             static_cast<std::uint32_t>(rng.next_below(per_rack));
    };

    double t = arrive;
    for (;;) {
      t += rng.next_exponential(params.flows_per_s);
      if (t >= depart) break;
      Flow flow;
      flow.src = span_server();
      switch (type) {
        case 0:  // rack-local tenant (Hadoop-2-like)
          flow.dst = pick_dst(flow.src, servers, per_rack, per_pod,
                              params.rack_local_frac,
                              1.0 - params.rack_local_frac, rng);
          break;
        case 1:  // Pod-local tenant (Web-like)
          flow.dst = pick_dst(flow.src, servers, per_rack, per_pod, 0.0,
                              params.pod_local_frac, rng);
          break;
        default:  // network-wide tenant (Hadoop-1-like)
          flow.dst = pick_dst(flow.src, servers, per_rack, per_pod, 0.0,
                              0.0, rng);
          break;
      }
      flow.bytes =
          std::min(rng.next_pareto(params.pareto_alpha, xm), 1e10);
      flow.start_s = t;
      flows.push_back(flow);
    }
  }
  if (flows.empty()) {
    throw std::invalid_argument(
        "tenant churn: duration too short for any tenant flow");
  }
  std::stable_sort(flows.begin(), flows.end(),
                   [](const Flow& a, const Flow& b) {
                     return a.start_s < b.start_s;
                   });
  return flows;
}

LocalityMix measure_locality(const ClosParams& layout, const Workload& flows) {
  LocalityMix mix;
  if (flows.empty()) return mix;
  const std::uint32_t per_rack = layout.servers_per_edge;
  const std::uint32_t per_pod = per_rack * layout.edge_per_pod;
  for (const Flow& f : flows) {
    if (f.src / per_rack == f.dst / per_rack) {
      mix.intra_rack += 1;
    } else if (f.src / per_pod == f.dst / per_pod) {
      mix.intra_pod += 1;
    } else {
      mix.inter_pod += 1;
    }
  }
  const double total = static_cast<double>(flows.size());
  mix.intra_rack /= total;
  mix.intra_pod /= total;
  mix.inter_pod /= total;
  return mix;
}

}  // namespace flattree
