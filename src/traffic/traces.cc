#include "traffic/traces.h"

#include <algorithm>
#include <stdexcept>

namespace flattree {

TraceParams TraceParams::hadoop1() {
  TraceParams p;
  p.name = "Hadoop-1";
  // Shuffle-dominated, network-wide: locality is whatever uniform random
  // selection gives (tiny intra-rack, small intra-Pod).
  p.intra_rack_frac = 0.02;
  p.intra_pod_frac = 0.08;
  p.mean_flow_bytes = 10e6;
  p.pareto_alpha = 1.3;
  p.flows_per_s = 1500;
  return p;
}

TraceParams TraceParams::hadoop2() {
  TraceParams p;
  p.name = "Hadoop-2";
  p.intra_rack_frac = 0.757;  // §5.2: 75.7% intra-rack
  p.intra_pod_frac = 0.24;    // "almost all the remaining traffic is intra-Pod"
  p.mean_flow_bytes = 2e6;
  p.pareto_alpha = 1.5;
  p.flows_per_s = 2000;
  return p;
}

TraceParams TraceParams::web() {
  TraceParams p;
  p.name = "Web";
  p.intra_rack_frac = 0.01;  // "a tiny amount of intra-rack traffic"
  p.intra_pod_frac = 0.77;   // ~77% of total traffic stays in the Pod
  p.mean_flow_bytes = 0.2e6;
  p.pareto_alpha = 1.8;
  p.flows_per_s = 4000;
  return p;
}

TraceParams TraceParams::cache() {
  TraceParams p;
  p.name = "Cache";
  p.intra_rack_frac = 0.002;  // "almost zero intra-rack traffic"
  p.intra_pod_frac = 0.882;   // ~88% intra-Pod; higher volume than Web
  p.mean_flow_bytes = 0.5e6;
  p.pareto_alpha = 1.6;
  p.flows_per_s = 6000;
  return p;
}

Workload generate_trace(const ClosParams& layout, const TraceParams& params) {
  if (params.intra_rack_frac < 0 || params.intra_pod_frac < 0 ||
      params.intra_rack_frac + params.intra_pod_frac > 1.0 + 1e-9) {
    throw std::invalid_argument("trace: locality fractions out of range");
  }
  if (params.duration_s <= 0 || params.flows_per_s <= 0) {
    throw std::invalid_argument("trace: bad rate or duration");
  }
  const std::uint32_t servers = layout.total_servers();
  const std::uint32_t per_rack = layout.servers_per_edge;
  const std::uint32_t per_pod = per_rack * layout.edge_per_pod;
  if (servers < 2 * per_pod) {
    throw std::invalid_argument("trace: need at least 2 pods of servers");
  }

  Rng rng{params.seed};
  // Pareto xm chosen so the mean matches: mean = alpha*xm/(alpha-1).
  const double xm =
      params.mean_flow_bytes * (params.pareto_alpha - 1) / params.pareto_alpha;

  Workload flows;
  double t = 0;
  for (;;) {
    t += rng.next_exponential(params.flows_per_s);
    if (t >= params.duration_s) break;
    const std::uint32_t src =
        static_cast<std::uint32_t>(rng.next_below(servers));
    const std::uint32_t rack = src / per_rack;
    const std::uint32_t pod = src / per_pod;

    const double locality = rng.next_double();
    std::uint32_t dst = src;
    if (locality < params.intra_rack_frac && per_rack > 1) {
      while (dst == src) {
        dst = rack * per_rack +
              static_cast<std::uint32_t>(rng.next_below(per_rack));
      }
    } else if (locality < params.intra_rack_frac + params.intra_pod_frac &&
               per_pod > per_rack) {
      // Intra-Pod, different rack.
      do {
        dst = pod * per_pod +
              static_cast<std::uint32_t>(rng.next_below(per_pod));
      } while (dst / per_rack == rack);
    } else {
      // Inter-Pod.
      do {
        dst = static_cast<std::uint32_t>(rng.next_below(servers));
      } while (dst / per_pod == pod);
    }

    Flow flow;
    flow.src = src;
    flow.dst = dst;
    flow.bytes =
        std::min(rng.next_pareto(params.pareto_alpha, xm), 1e10);  // cap tail
    flow.start_s = t;
    flows.push_back(flow);
  }
  if (flows.empty()) {
    throw std::invalid_argument("trace: duration too short for any arrival");
  }
  return flows;
}

LocalityMix measure_locality(const ClosParams& layout, const Workload& flows) {
  LocalityMix mix;
  if (flows.empty()) return mix;
  const std::uint32_t per_rack = layout.servers_per_edge;
  const std::uint32_t per_pod = per_rack * layout.edge_per_pod;
  for (const Flow& f : flows) {
    if (f.src / per_rack == f.dst / per_rack) {
      mix.intra_rack += 1;
    } else if (f.src / per_pod == f.dst / per_pod) {
      mix.intra_pod += 1;
    } else {
      mix.inter_pod += 1;
    }
  }
  const double total = static_cast<double>(flows.size());
  mix.intra_rack /= total;
  mix.intra_pod /= total;
  mix.inter_pod /= total;
  return mix;
}

}  // namespace flattree
