#include "traffic/apps.h"

#include <stdexcept>
#include <vector>

namespace flattree {

Workload spark_broadcast(const BroadcastParams& params) {
  if (params.num_workers == 0) {
    throw std::invalid_argument("broadcast: no workers");
  }
  if (params.chunks == 0) {
    throw std::invalid_argument("broadcast: need at least one chunk");
  }
  Rng rng{params.seed};
  Workload flows;
  // Previous iteration's flow indices (the next iteration's barrier).
  std::vector<std::uint32_t> prev_iteration_flows;

  for (std::uint32_t iter = 0; iter < params.iterations; ++iter) {
    std::vector<std::uint32_t> this_iteration_flows;
    for (std::uint32_t chunk = 0; chunk < params.chunks; ++chunk) {
      // Seeders hold this chunk; initially just the master.
      std::vector<std::uint32_t> seeders{params.master};
      std::vector<std::uint32_t> pending;  // workers still without the chunk
      for (std::uint32_t w = 0; w < params.num_workers; ++w) {
        pending.push_back(params.master + 1 + w);
      }
      shuffle(pending, rng);

      // Flow index that delivered the chunk to each seeder (master: none;
      // in later iterations the master waits for the previous barrier).
      std::vector<std::vector<std::uint32_t>> seeder_dep{{}};
      if (iter > 0) seeder_dep[0] = prev_iteration_flows;

      std::size_t next_pending = 0;
      while (next_pending < pending.size()) {
        // One torrent round: every current seeder serves one new peer.
        const std::size_t round_seeders = seeders.size();
        std::vector<std::uint32_t> new_seeders;
        std::vector<std::vector<std::uint32_t>> new_deps;
        for (std::size_t s = 0;
             s < round_seeders && next_pending < pending.size(); ++s) {
          const std::uint32_t receiver = pending[next_pending++];
          Flow flow;
          flow.src = seeders[s];
          flow.dst = receiver;
          flow.bytes = params.block_bytes / params.chunks;
          flow.depends_on = seeder_dep[s];
          flow.dep_delay_s = params.serialization_s;
          const std::uint32_t flow_index =
              static_cast<std::uint32_t>(flows.size());
          flows.push_back(flow);
          this_iteration_flows.push_back(flow_index);
          new_seeders.push_back(receiver);
          new_deps.push_back({flow_index});
        }
        for (std::size_t i = 0; i < new_seeders.size(); ++i) {
          seeders.push_back(new_seeders[i]);
          seeder_dep.push_back(new_deps[i]);
        }
      }
    }
    prev_iteration_flows = this_iteration_flows;
  }
  return flows;
}

Workload hadoop_shuffle(const ShuffleParams& params) {
  if (params.num_mappers == 0 || params.num_reducers == 0) {
    throw std::invalid_argument("shuffle: empty mapper or reducer set");
  }
  if (params.num_reducers > params.num_mappers) {
    throw std::invalid_argument("shuffle: more reducers than workers");
  }
  Workload flows;
  for (std::uint32_t m = 0; m < params.num_mappers; ++m) {
    const std::uint32_t mapper = params.first_worker + m;
    for (std::uint32_t r = 0; r < params.num_reducers; ++r) {
      const std::uint32_t reducer = params.first_worker + r;
      if (mapper == reducer) continue;  // local partition, no network flow
      Flow flow;
      flow.src = mapper;
      flow.dst = reducer;
      flow.bytes = params.bytes_per_pair;
      flow.dep_delay_s = params.serialization_s;
      flows.push_back(flow);
    }
  }
  return flows;
}

Workload coflow_jobs(const CoflowJobsParams& params) {
  if (params.num_servers < params.mappers_per_job + params.reducers_per_job) {
    throw std::invalid_argument("coflow jobs: not enough servers for a job");
  }
  if (params.jobs == 0 || params.jobs_per_s <= 0) {
    throw std::invalid_argument("coflow jobs: bad job count or rate");
  }
  Rng rng{params.seed};
  Workload flows;
  double t = 0;
  for (std::uint32_t job = 0; job < params.jobs; ++job) {
    t += rng.next_exponential(params.jobs_per_s);
    // Sample disjoint mapper and reducer sets for this job.
    std::vector<std::uint32_t> servers(params.num_servers);
    for (std::uint32_t i = 0; i < params.num_servers; ++i) servers[i] = i;
    shuffle(servers, rng);
    const std::uint32_t mappers = params.mappers_per_job;
    const std::uint32_t reducers = params.reducers_per_job;
    for (std::uint32_t m = 0; m < mappers; ++m) {
      for (std::uint32_t r = 0; r < reducers; ++r) {
        Flow f;
        f.src = servers[m];
        f.dst = servers[mappers + r];
        f.bytes = params.bytes_per_pair;
        f.start_s = t;
        f.group = job;
        flows.push_back(f);
      }
    }
  }
  return flows;
}

}  // namespace flattree
