// Workload (de)serialization.
//
// The paper's Hadoop-1 experiment replays a public trace (the Coflow
// benchmark CSV); this module gives the library the same capability: save
// any generated Workload and load external traces. The format is one flow
// per line:
//
//   src,dst,bytes,start_s[,dep_delay_s[,dep1;dep2;...]]
//
// Lines starting with '#' are comments. Dependencies reference earlier line
// indices (0-based among flow lines).
#pragma once

#include <iosfwd>
#include <string>

#include "traffic/flow.h"

namespace flattree {

void write_workload_csv(std::ostream& out, const Workload& flows);
[[nodiscard]] std::string workload_to_csv(const Workload& flows);

// Parses the CSV format above. Throws std::invalid_argument with a
// line-numbered message on malformed input (bad field counts, non-numeric
// values, dependency forward-references or out-of-range indices).
[[nodiscard]] Workload read_workload_csv(std::istream& in);
[[nodiscard]] Workload workload_from_csv(const std::string& text);

}  // namespace flattree
