// Synthetic data-center traces with controlled locality (§5.2).
//
// The paper drives Figure 8 with traffic from four Facebook data centers.
// Only the Hadoop-1 trace was public; the Hadoop-2 / Web / Cache workloads
// were themselves reverse-engineered by the authors from the published
// statistics in Roy et al. (SIGCOMM'15). We synthesize all four from the
// same published statistics: Poisson flow arrivals, Pareto (heavy-tailed)
// flow sizes, and the per-datacenter locality mix:
//
//   Hadoop-1  network-wide shuffle, no clear locality
//   Hadoop-2  75.7% intra-rack, almost all the rest intra-Pod
//   Web       ~0% intra-rack, ~77% intra-Pod, rest inter-Pod
//   Cache     ~0% intra-rack, ~88% intra-Pod, rest inter-Pod
//
// Rack/Pod membership is defined positionally (servers_per_rack consecutive
// servers per rack, racks_per_pod racks per Pod), matching the Clos layout
// the flat-tree was built from — so locality is mode-independent.
#pragma once

#include <cstdint>
#include <string>

#include "net/rng.h"
#include "topo/params.h"
#include "traffic/flow.h"

namespace flattree {

struct TraceParams {
  std::string name;
  double duration_s{1.0};
  double flows_per_s{1000.0};
  double intra_rack_frac{0.0};
  double intra_pod_frac{0.0};  // of total (not of remainder)
  double mean_flow_bytes{1e6};
  double pareto_alpha{1.5};    // tail index of the size distribution
  std::uint64_t seed{7};

  static TraceParams hadoop1();
  static TraceParams hadoop2();
  static TraceParams web();
  static TraceParams cache();
};

// Generates the flow list for a network with the given Clos layout (used
// only for rack/Pod membership and server count).
[[nodiscard]] Workload generate_trace(const ClosParams& layout,
                                      const TraceParams& params);

// Measured locality of a workload (for validating generators).
struct LocalityMix {
  double intra_rack{0.0};
  double intra_pod{0.0};
  double inter_pod{0.0};
};
[[nodiscard]] LocalityMix measure_locality(const ClosParams& layout,
                                           const Workload& flows);

}  // namespace flattree
