// Synthetic data-center traces with controlled locality (§5.2).
//
// The paper drives Figure 8 with traffic from four Facebook data centers.
// Only the Hadoop-1 trace was public; the Hadoop-2 / Web / Cache workloads
// were themselves reverse-engineered by the authors from the published
// statistics in Roy et al. (SIGCOMM'15). We synthesize all four from the
// same published statistics: Poisson flow arrivals, Pareto (heavy-tailed)
// flow sizes, and the per-datacenter locality mix:
//
//   Hadoop-1  network-wide shuffle, no clear locality
//   Hadoop-2  75.7% intra-rack, almost all the rest intra-Pod
//   Web       ~0% intra-rack, ~77% intra-Pod, rest inter-Pod
//   Cache     ~0% intra-rack, ~88% intra-Pod, rest inter-Pod
//
// Rack/Pod membership is defined positionally (servers_per_rack consecutive
// servers per rack, racks_per_pod racks per Pod), matching the Clos layout
// the flat-tree was built from — so locality is mode-independent.
#pragma once

#include <cstdint>
#include <string>

#include "net/rng.h"
#include "topo/params.h"
#include "traffic/flow.h"

namespace flattree {

struct TraceParams {
  std::string name;
  double duration_s{1.0};
  double flows_per_s{1000.0};
  double intra_rack_frac{0.0};
  double intra_pod_frac{0.0};  // of total (not of remainder)
  double mean_flow_bytes{1e6};
  double pareto_alpha{1.5};    // tail index of the size distribution
  std::uint64_t seed{7};

  static TraceParams hadoop1();
  static TraceParams hadoop2();
  static TraceParams web();
  static TraceParams cache();
};

// Generates the flow list for a network with the given Clos layout (used
// only for rack/Pod membership and server count).
[[nodiscard]] Workload generate_trace(const ClosParams& layout,
                                      const TraceParams& params);

// Measured locality of a workload (for validating generators).
struct LocalityMix {
  double intra_rack{0.0};
  double intra_pod{0.0};
  double inter_pod{0.0};
};
[[nodiscard]] LocalityMix measure_locality(const ClosParams& layout,
                                           const Workload& flows);

// -- time-varying traces ------------------------------------------------------
//
// The closed-loop experiments need demand that *shifts* while the fabric
// runs: a diurnal Web -> Hadoop locality swing, a square-wave oscillation
// for hysteresis stress, and tenant arrival/departure churn. Both
// generators are deterministic in their seed (single Rng stream, thinning
// for the time-varying arrival rate), so autopilot decision logs are
// replayable bit-for-bit.

// Blends two static trace profiles with a time-dependent weight a(t):
// locality fractions, mean flow size, tail index and arrival rate all
// interpolate linearly between `low` (a = 0) and `high` (a = 1).
struct ModulatedTraceParams {
  TraceParams low;      // the a(t) = 0 profile (e.g. Web: Pod-local)
  TraceParams high;     // the a(t) = 1 profile (e.g. Hadoop-1: network-wide)
  double duration_s{10.0};
  std::uint64_t seed{7};
  // kRamp: a(t) = t / duration (one monotone shift, the diurnal drift).
  // kSine: a(t) = (1 - cos(2*pi*t / period)) / 2 (smooth day/night cycle).
  // kSquare: a alternates 0 / 1 every period/2 (worst-case oscillation for
  // hysteresis stress — demand flips faster than any conversion pays off).
  enum class Shape : std::uint8_t { kRamp, kSine, kSquare };
  Shape shape{Shape::kRamp};
  double period_s{4.0};  // kSine / kSquare only
};
[[nodiscard]] Workload generate_modulated_trace(
    const ClosParams& layout, const ModulatedTraceParams& params);

// Multi-tenant churn: tenants arrive as a Poisson process, occupy a
// contiguous rack span (placement rotates deterministically around the
// fabric), emit flows with a per-tenant locality profile for an
// exponential lifetime, and depart. The fabric-wide locality mix therefore
// drifts with the tenant population — the demand-shift pattern the
// autopilot's per-Pod decisions are built for.
struct TenantChurnParams {
  double duration_s{10.0};
  double arrivals_per_s{0.5};       // tenant arrival rate
  double mean_lifetime_s{4.0};      // exponential tenant lifetime
  std::uint32_t racks_per_tenant{2};
  double flows_per_s{800.0};        // per active tenant
  double mean_flow_bytes{2e6};
  double pareto_alpha{1.6};
  // Tenant types cycle deterministically in arrival order:
  //   rack-local (Hadoop-2-like) -> Pod-local (Web-like) -> network-wide
  // with these weights (count per cycle of 3 arrivals scaled by weight).
  double rack_local_frac{0.7};      // intra-rack byte share of a rack-local tenant
  double pod_local_frac{0.8};       // intra-Pod share of a Pod-local tenant
  std::uint64_t seed{7};
};
[[nodiscard]] Workload generate_tenant_churn(const ClosParams& layout,
                                             const TenantChurnParams& params);

}  // namespace flattree
