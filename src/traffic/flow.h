// Workload representation shared by the LP models and both simulators.
//
// Servers are identified by their global server index, which by the fixed
// node-ordering convention of every builder in this library (servers first)
// equals the NodeId value in any realized graph. A workload is therefore
// portable across topology modes — the same Flow list can be evaluated on
// Clos, flat-tree global/local, and random graphs.
#pragma once

#include <cstdint>
#include <vector>

namespace flattree {

struct Flow {
  std::uint32_t src{0};
  std::uint32_t dst{0};
  double bytes{0.0};        // 0 = persistent (throughput experiments)
  double start_s{0.0};
  // Flow indices that must complete before this flow starts (application
  // phase structure, e.g. torrent broadcast rounds).
  std::vector<std::uint32_t> depends_on;
  // Extra latency between dependency completion and start (serialization /
  // deserialization overhead in the computation framework, §5.4).
  double dep_delay_s{0.0};
  // Coflow/job membership: flows of one application-level transfer share a
  // group; kNoGroup means ungrouped. Group completion time (the slowest
  // member's finish) is the application-level metric for shuffle-heavy
  // workloads like the Coflow benchmark the paper's Hadoop-1 trace is from.
  static constexpr std::uint32_t kNoGroup = 0xffffffffu;
  std::uint32_t group{kNoGroup};
};

// Coflow completion times: for each group, the span from the earliest
// member start to the latest member finish. Results must be parallel to
// `flows` (as returned by FluidSimulator::run). Incomplete members make a
// group incomplete.
struct CoflowStats {
  std::uint32_t group{0};
  bool completed{false};
  double cct_s{0.0};
  std::size_t flows{0};
};

using Workload = std::vector<Flow>;

}  // namespace flattree
