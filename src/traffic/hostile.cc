#include "traffic/hostile.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace flattree {
namespace {

// Pareto xm for a target mean: mean = alpha * xm / (alpha - 1).
double pareto_xm(double mean, double alpha) {
  return mean * (alpha - 1) / alpha;
}

double bounded_pareto(double mean, double alpha, double cap, Rng& rng) {
  return std::min(rng.next_pareto(alpha, pareto_xm(mean, alpha)), cap);
}

void check_size_model(double mean_bytes, double alpha, double max_bytes,
                      const char* who) {
  if (mean_bytes <= 0 || alpha <= 1 || max_bytes < mean_bytes) {
    throw std::invalid_argument(std::string{who} +
                                ": size model requires mean_bytes > 0, "
                                "alpha > 1, max_bytes >= mean_bytes");
  }
}

}  // namespace

Workload incast_traffic(const IncastParams& p) {
  if (p.num_servers < 2 || p.groups == 0 || p.fanin == 0 || p.requests == 0 ||
      p.fanin >= p.num_servers || p.period_s <= 0) {
    throw std::invalid_argument(
        "incast_traffic: requires num_servers > fanin >= 1, groups >= 1, "
        "requests >= 1, period_s > 0");
  }
  if (p.pod_local) {
    if (p.servers_per_pod == 0 || p.servers_per_pod > p.num_servers ||
        p.fanin >= p.servers_per_pod) {
      throw std::invalid_argument(
          "incast_traffic: pod_local requires fanin < servers_per_pod <= "
          "num_servers");
    }
  }
  Rng rng{p.seed};
  Workload flows;
  flows.reserve(static_cast<std::size_t>(p.groups) * p.fanin * p.requests);
  const std::uint32_t pods =
      p.servers_per_pod > 0 ? p.num_servers / p.servers_per_pod : 1;
  for (std::uint32_t g = 0; g < p.groups; ++g) {
    // Deterministic placement: groups rotate around the fabric (pod-major
    // for pod_local groups) so the battery stresses distinct regions.
    std::uint32_t base = 0, span = p.num_servers;
    if (p.pod_local) {
      base = (g % pods) * p.servers_per_pod;
      span = p.servers_per_pod;
    }
    const std::uint32_t aggregator =
        base + static_cast<std::uint32_t>(rng.next_below(span));
    // fanin distinct senders != aggregator, drawn without replacement via
    // rejection (span is comfortably larger than fanin by validation).
    std::vector<std::uint32_t> senders;
    senders.reserve(p.fanin);
    while (senders.size() < p.fanin) {
      const std::uint32_t s =
          base + static_cast<std::uint32_t>(rng.next_below(span));
      if (s == aggregator ||
          std::find(senders.begin(), senders.end(), s) != senders.end()) {
        continue;
      }
      senders.push_back(s);
    }
    for (std::uint32_t r = 0; r < p.requests; ++r) {
      const double t = p.start_s + r * p.period_s;
      for (const std::uint32_t s : senders) {
        Flow flow;
        flow.src = s;
        flow.dst = aggregator;
        flow.bytes = bounded_pareto(p.mean_bytes, p.alpha, p.max_bytes, rng);
        flow.start_s = t;
        flow.group = g * p.requests + r;  // one coflow per (group, epoch)
        flows.push_back(flow);
      }
    }
  }
  return flows;
}

Workload tenant_class_traffic(const TenantClassParams& p) {
  if (p.num_servers < 2 || p.duration_s <= 0 || p.flows_per_s <= 0) {
    throw std::invalid_argument(
        "tenant_class_traffic: requires num_servers >= 2, duration_s > 0, "
        "flows_per_s > 0");
  }
  check_size_model(p.mean_bytes, p.alpha, p.max_bytes, "tenant_class_traffic");
  if (p.servers_per_rack == 0 || p.servers_per_pod == 0 ||
      p.servers_per_pod % p.servers_per_rack != 0 ||
      p.num_servers % p.servers_per_pod != 0) {
    throw std::invalid_argument(
        "tenant_class_traffic: rack/Pod sizes must divide the server count");
  }
  if (p.intra_rack_frac < 0 || p.intra_pod_frac < 0 ||
      p.intra_rack_frac + p.intra_pod_frac > 1 || p.hot_pod_frac < 0 ||
      p.hot_pod_frac > 1) {
    throw std::invalid_argument(
        "tenant_class_traffic: locality fractions must lie in [0, 1] and "
        "intra_rack_frac + intra_pod_frac <= 1");
  }
  const std::uint32_t pods = p.num_servers / p.servers_per_pod;
  if (p.hot_pod >= 0 && static_cast<std::uint32_t>(p.hot_pod) >= pods) {
    throw std::invalid_argument(
        "tenant_class_traffic: hot_pod out of range for the layout");
  }
  Rng rng{p.seed};
  Workload flows;
  double t = p.start_s;
  for (;;) {
    t += rng.next_exponential(p.flows_per_s);
    if (t >= p.start_s + p.duration_s) break;
    const std::uint32_t src =
        static_cast<std::uint32_t>(rng.next_below(p.num_servers));
    std::uint32_t dst = src;
    if (p.hot_pod >= 0 && rng.next_double() < p.hot_pod_frac) {
      const std::uint32_t base =
          static_cast<std::uint32_t>(p.hot_pod) * p.servers_per_pod;
      do {
        dst = base +
              static_cast<std::uint32_t>(rng.next_below(p.servers_per_pod));
      } while (dst == src);
    } else {
      const std::uint32_t rack = src / p.servers_per_rack;
      const std::uint32_t pod = src / p.servers_per_pod;
      const double locality = rng.next_double();
      if (locality < p.intra_rack_frac && p.servers_per_rack > 1) {
        while (dst == src) {
          dst = rack * p.servers_per_rack +
                static_cast<std::uint32_t>(rng.next_below(p.servers_per_rack));
        }
      } else if (locality < p.intra_rack_frac + p.intra_pod_frac &&
                 p.servers_per_pod > p.servers_per_rack) {
        do {
          dst = pod * p.servers_per_pod +
                static_cast<std::uint32_t>(rng.next_below(p.servers_per_pod));
        } while (dst / p.servers_per_rack == rack);
      } else if (p.num_servers > p.servers_per_pod) {
        do {
          dst = static_cast<std::uint32_t>(rng.next_below(p.num_servers));
        } while (dst / p.servers_per_pod == pod);
      } else {
        while (dst == src) {
          dst = static_cast<std::uint32_t>(rng.next_below(p.num_servers));
        }
      }
    }
    Flow flow;
    flow.src = src;
    flow.dst = dst;
    flow.bytes = bounded_pareto(p.mean_bytes, p.alpha, p.max_bytes, rng);
    flow.start_s = t;
    flows.push_back(flow);
  }
  return flows;
}

Workload three_tier_traffic(const ThreeTierParams& p) {
  if (p.num_servers < 3 || p.duration_s <= 0 || p.requests_per_s <= 0 ||
      p.request_bytes <= 0 || p.cache_reply_bytes <= 0 ||
      p.storage_reply_bytes <= 0 || p.think_s < 0) {
    throw std::invalid_argument(
        "three_tier_traffic: requires num_servers >= 3 and positive rates, "
        "sizes and durations");
  }
  if (p.frontend_frac <= 0 || p.cache_frac <= 0 ||
      p.frontend_frac + p.cache_frac >= 1 || p.miss_frac < 0 ||
      p.miss_frac > 1) {
    throw std::invalid_argument(
        "three_tier_traffic: tier fractions must be positive and sum below "
        "1; miss_frac in [0, 1]");
  }
  const std::uint32_t frontends = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(p.frontend_frac * p.num_servers));
  const std::uint32_t caches = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(p.cache_frac * p.num_servers));
  if (frontends + caches >= p.num_servers) {
    throw std::invalid_argument(
        "three_tier_traffic: layout leaves no storage servers");
  }
  const std::uint32_t storage = p.num_servers - frontends - caches;
  Rng rng{p.seed};
  Workload flows;
  double t = p.start_s;
  std::uint32_t request = 0;
  for (;;) {
    t += rng.next_exponential(p.requests_per_s);
    if (t >= p.start_s + p.duration_s) break;
    const std::uint32_t f =
        static_cast<std::uint32_t>(rng.next_below(frontends));
    const std::uint32_t c =
        frontends + static_cast<std::uint32_t>(rng.next_below(caches));
    const bool miss = rng.next_double() < p.miss_frac;
    const std::uint32_t group = request++;
    // frontend -> cache request.
    const std::uint32_t req_index = static_cast<std::uint32_t>(flows.size());
    {
      Flow flow;
      flow.src = f;
      flow.dst = c;
      flow.bytes = p.request_bytes;
      flow.start_s = t;
      flow.group = group;
      flows.push_back(flow);
    }
    std::uint32_t reply_dep = req_index;
    if (miss) {
      const std::uint32_t s =
          frontends + caches +
          static_cast<std::uint32_t>(rng.next_below(storage));
      // cache -> storage fetch, then storage -> cache payload.
      Flow fetch;
      fetch.src = c;
      fetch.dst = s;
      fetch.bytes = p.request_bytes;
      fetch.depends_on = {req_index};
      fetch.dep_delay_s = p.think_s;
      fetch.group = group;
      const std::uint32_t fetch_index =
          static_cast<std::uint32_t>(flows.size());
      flows.push_back(fetch);
      Flow payload;
      payload.src = s;
      payload.dst = c;
      payload.bytes = p.storage_reply_bytes;
      payload.depends_on = {fetch_index};
      payload.dep_delay_s = p.think_s;
      payload.group = group;
      reply_dep = static_cast<std::uint32_t>(flows.size());
      flows.push_back(payload);
    }
    // cache -> frontend reply.
    Flow reply;
    reply.src = c;
    reply.dst = f;
    reply.bytes = p.cache_reply_bytes;
    reply.depends_on = {reply_dep};
    reply.dep_delay_s = p.think_s;
    reply.group = group;
    flows.push_back(reply);
  }
  return flows;
}

}  // namespace flattree
