#include "traffic/io.h"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace flattree {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::invalid_argument("workload csv, line " + std::to_string(line) +
                              ": " + what);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::uint32_t parse_u32(const std::string& s, std::size_t line) {
  std::uint32_t value{};
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    fail(line, "bad integer '" + s + "'");
  }
  return value;
}

double parse_double(const std::string& s, std::size_t line) {
  try {
    std::size_t used = 0;
    const double value = std::stod(s, &used);
    if (used != s.size()) fail(line, "bad number '" + s + "'");
    return value;
  } catch (const std::logic_error&) {
    fail(line, "bad number '" + s + "'");
  }
}

}  // namespace

void write_workload_csv(std::ostream& out, const Workload& flows) {
  // Full round-trip precision for the double fields.
  const auto saved_precision = out.precision(17);
  out << "# src,dst,bytes,start_s,dep_delay_s,deps\n";
  for (const Flow& f : flows) {
    out << f.src << ',' << f.dst << ',' << f.bytes << ',' << f.start_s << ','
        << f.dep_delay_s << ',';
    for (std::size_t i = 0; i < f.depends_on.size(); ++i) {
      if (i > 0) out << ';';
      out << f.depends_on[i];
    }
    out << '\n';
  }
  out.precision(saved_precision);
}

std::string workload_to_csv(const Workload& flows) {
  std::ostringstream out;
  write_workload_csv(out, flows);
  return out.str();
}

Workload read_workload_csv(std::istream& in) {
  Workload flows;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line.front() == '#') continue;
    const auto fields = split(line, ',');
    if (fields.size() < 4 || fields.size() > 6) {
      fail(line_number, "expected 4-6 fields, got " +
                            std::to_string(fields.size()));
    }
    Flow f;
    f.src = parse_u32(fields[0], line_number);
    f.dst = parse_u32(fields[1], line_number);
    f.bytes = parse_double(fields[2], line_number);
    f.start_s = parse_double(fields[3], line_number);
    if (fields.size() >= 5 && !fields[4].empty()) {
      f.dep_delay_s = parse_double(fields[4], line_number);
    }
    if (fields.size() == 6 && !fields[5].empty()) {
      for (const std::string& dep : split(fields[5], ';')) {
        const std::uint32_t index = parse_u32(dep, line_number);
        if (index >= flows.size()) {
          fail(line_number, "dependency " + dep +
                                " is not an earlier flow line");
        }
        f.depends_on.push_back(index);
      }
    }
    flows.push_back(std::move(f));
  }
  return flows;
}

Workload workload_from_csv(const std::string& text) {
  std::istringstream in{text};
  return read_workload_csv(in);
}

}  // namespace flattree
