// Application communication-phase models (§5.4, Figure 11).
//
// The testbed experiments run Spark Word2Vec (torrent broadcast of model
// updates) and Hadoop/Tez Sort (mapper -> reducer shuffle). What makes these
// workloads topology-sensitive is their phase structure — who talks to whom,
// in what order, with what serialization overheads — which these generators
// reproduce as dependency-structured Flow lists for the simulators.
#pragma once

#include <cstdint>

#include "net/rng.h"
#include "traffic/flow.h"

namespace flattree {

struct BroadcastParams {
  std::uint32_t master{0};          // server index of the driver
  std::uint32_t num_workers{23};    // receivers (servers master+1 ..)
  double block_bytes{64e6};         // broadcast payload per iteration
  std::uint32_t iterations{4};      // ML iterations (one broadcast each)
  std::uint32_t chunks{4};          // torrent pipelining (chunks in flight)
  double serialization_s{0.05};     // ser/deser overhead per transfer
  std::uint64_t seed{11};
};

// Torrent-style broadcast: the block is split into `chunks` pieces, each
// distributed along its own doubling tree (the master seeds first; each
// completed receiver serves a new peer chosen at random). Chunks propagate
// concurrently — the BitTorrent pipelining that turns a broadcast into
// many simultaneous transfers. Iteration b+1 starts when every chunk of
// iteration b has reached every worker.
[[nodiscard]] Workload spark_broadcast(const BroadcastParams& params);

struct ShuffleParams {
  std::uint32_t first_worker{1};
  std::uint32_t num_mappers{23};
  std::uint32_t num_reducers{8};    // reducers are the first servers among workers
  double bytes_per_pair{32e6};      // shuffle volume mapper -> reducer
  double serialization_s{0.03};
  std::uint64_t seed{13};
};

// Tez Sort shuffle: every mapper sends a partition to every reducer, all
// flows released together (the heavy all-at-once shuffle phase).
[[nodiscard]] Workload hadoop_shuffle(const ShuffleParams& params);

struct CoflowJobsParams {
  std::uint32_t num_servers{0};
  std::uint32_t jobs{20};
  std::uint32_t mappers_per_job{8};
  std::uint32_t reducers_per_job{4};
  double bytes_per_pair{8e6};
  double jobs_per_s{10.0};     // Poisson job arrivals
  std::uint64_t seed{23};
};

// A stream of MapReduce-style jobs (the Coflow-benchmark shape behind the
// paper's Hadoop-1 trace): each job picks random mapper and reducer sets
// and emits a mapper x reducer shuffle whose flows share one coflow group.
// The application-level metric over this workload is the coflow completion
// time (the group's slowest flow), not individual FCTs.
[[nodiscard]] Workload coflow_jobs(const CoflowJobsParams& params);

}  // namespace flattree
