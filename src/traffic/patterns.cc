#include "traffic/patterns.h"

#include <numeric>
#include <stdexcept>

namespace flattree {

Workload permutation_traffic(std::uint32_t num_servers, Rng& rng) {
  if (num_servers < 2) {
    throw std::invalid_argument("permutation: need at least 2 servers");
  }
  // Random permutation, then rotate fixed points away to get a derangement.
  std::vector<std::uint32_t> dst(num_servers);
  std::iota(dst.begin(), dst.end(), 0);
  shuffle(dst, rng);
  for (std::uint32_t i = 0; i < num_servers; ++i) {
    if (dst[i] == i) {
      const std::uint32_t j = (i + 1) % num_servers;
      std::swap(dst[i], dst[j]);
    }
  }
  Workload flows;
  flows.reserve(num_servers);
  for (std::uint32_t i = 0; i < num_servers; ++i) {
    if (dst[i] == i) continue;  // possible only for the final swap partner
    flows.push_back(Flow{i, dst[i]});
  }
  return flows;
}

Workload pod_stride_traffic(std::uint32_t num_servers,
                            std::uint32_t servers_per_pod) {
  if (servers_per_pod == 0 || num_servers % servers_per_pod != 0) {
    throw std::invalid_argument("pod stride: servers_per_pod must divide");
  }
  if (num_servers / servers_per_pod < 2) {
    throw std::invalid_argument("pod stride: need at least 2 pods");
  }
  Workload flows;
  flows.reserve(num_servers);
  for (std::uint32_t i = 0; i < num_servers; ++i) {
    flows.push_back(Flow{i, (i + servers_per_pod) % num_servers});
  }
  return flows;
}

Workload hot_spot_traffic(std::uint32_t num_servers, std::uint32_t cluster) {
  if (cluster < 2) throw std::invalid_argument("hot spot: cluster too small");
  Workload flows;
  for (std::uint32_t base = 0; base + cluster <= num_servers;
       base += cluster) {
    for (std::uint32_t i = 1; i < cluster; ++i) {
      flows.push_back(Flow{base, base + i});
    }
  }
  if (flows.empty()) {
    throw std::invalid_argument("hot spot: fewer servers than one cluster");
  }
  return flows;
}

Workload many_to_many_traffic(std::uint32_t num_servers,
                              std::uint32_t cluster) {
  return clustered_all_to_all(num_servers, cluster);
}

Workload clustered_all_to_all(std::uint32_t num_servers,
                              std::uint32_t cluster_size,
                              std::uint32_t max_clusters) {
  if (cluster_size < 2) {
    throw std::invalid_argument("clustered all-to-all: cluster too small");
  }
  Workload flows;
  std::uint32_t clusters = 0;
  for (std::uint32_t base = 0; base + cluster_size <= num_servers;
       base += cluster_size) {
    if (max_clusters > 0 && clusters >= max_clusters) break;
    ++clusters;
    for (std::uint32_t i = 0; i < cluster_size; ++i) {
      for (std::uint32_t j = 0; j < cluster_size; ++j) {
        if (i == j) continue;
        flows.push_back(Flow{base + i, base + j});
      }
    }
  }
  if (flows.empty()) {
    throw std::invalid_argument(
        "clustered all-to-all: fewer servers than one cluster");
  }
  return flows;
}

}  // namespace flattree
