// Synthetic traffic patterns (§5.1): the four standard interconnection-
// network workloads the paper drives Figure 6/7 with, plus the clustered
// all-to-all pattern of Table 1 (§2.1).
//
// All generators emit persistent flows (bytes = 0) for throughput
// measurement; pass them through FluidSimulator::measure_rates or the LP
// models. Server identity is the global server index.
#pragma once

#include <cstdint>

#include "net/rng.h"
#include "traffic/flow.h"

namespace flattree {

// Permutation (traffic-1): every server sends one flow to a unique random
// server other than itself (a random derangement); uniform network-wide
// load.
[[nodiscard]] Workload permutation_traffic(std::uint32_t num_servers,
                                           Rng& rng);

// Pod stride (traffic-2): every server sends to its counterpart in the next
// Pod; maximal core contention.
[[nodiscard]] Workload pod_stride_traffic(std::uint32_t num_servers,
                                          std::uint32_t servers_per_pod);

// Hot spot (traffic-3): consecutive servers form clusters of `cluster`; the
// first server of each cluster broadcasts to all others (machine-learning
// multicast phase).
[[nodiscard]] Workload hot_spot_traffic(std::uint32_t num_servers,
                                        std::uint32_t cluster = 100);

// Many-to-many (traffic-4): consecutive servers form clusters of `cluster`
// with all-to-all flows (MapReduce shuffle).
[[nodiscard]] Workload many_to_many_traffic(std::uint32_t num_servers,
                                            std::uint32_t cluster = 20);

// Table 1 pattern: consecutive servers packed into clusters of
// `cluster_size`, all-to-all within each cluster. `max_clusters` limits the
// instance size for LP runs (0 = all clusters).
[[nodiscard]] Workload clustered_all_to_all(std::uint32_t num_servers,
                                            std::uint32_t cluster_size,
                                            std::uint32_t max_clusters = 0);

}  // namespace flattree
