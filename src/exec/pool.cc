#include "exec/pool.h"

#include <chrono>
#include <memory>
#include <stdexcept>

namespace flattree::exec {
namespace {

// Which pool (if any) the current thread belongs to, and its worker index.
// Lets submit() route nested submissions to the submitting worker's own
// deque (depth-first execution, the work-stealing discipline).
thread_local ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_worker = 0;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = threads == 0 ? 1 : threads;
  queues_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    queues_.push_back(std::make_unique<Worker>());
  }
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock{sleep_mutex_};
    stopping_ = true;
  }
  sleep_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::attach_obs(const obs::ObsSink& sink) {
  obs::MetricsRegistry* reg = sink.metrics();
  c_tasks_.store(reg != nullptr ? &reg->counter("exec.pool.tasks",
                                                obs::MetricScope::kDiagnostic)
                                : nullptr,
                 std::memory_order_relaxed);
  c_steals_.store(reg != nullptr
                      ? &reg->counter("exec.pool.steals",
                                      obs::MetricScope::kDiagnostic)
                      : nullptr,
                  std::memory_order_relaxed);
}

std::size_t ThreadPool::resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::submit(Task task) {
  std::size_t target;
  if (tl_pool == this) {
    target = tl_worker;
  } else {
    std::lock_guard lock{sleep_mutex_};
    if (stopping_) {
      throw std::runtime_error("ThreadPool::submit: pool is shutting down");
    }
    target = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  {
    std::lock_guard lock{queues_[target]->mutex};
    queues_[target]->deque.push_back(std::move(task));
  }
  sleep_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, Task& out) {
  // Own deque first, newest task (depth-first).
  if (self < queues_.size()) {
    std::lock_guard lock{queues_[self]->mutex};
    if (!queues_[self]->deque.empty()) {
      out = std::move(queues_[self]->deque.back());
      queues_[self]->deque.pop_back();
      obs::add(c_tasks_.load(std::memory_order_relaxed));
      return true;
    }
  }
  // Steal the oldest task from any other deque.
  for (std::size_t step = 1; step <= queues_.size(); ++step) {
    const std::size_t victim = (self + step) % queues_.size();
    if (victim == self) continue;
    std::lock_guard lock{queues_[victim]->mutex};
    if (!queues_[victim]->deque.empty()) {
      out = std::move(queues_[victim]->deque.front());
      queues_[victim]->deque.pop_front();
      obs::add(c_tasks_.load(std::memory_order_relaxed));
      obs::add(c_steals_.load(std::memory_order_relaxed));
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t index) {
  tl_pool = this;
  tl_worker = index;
  for (;;) {
    Task task;
    while (try_pop(index, task)) {
      task();
      task = nullptr;
    }
    std::unique_lock lock{sleep_mutex_};
    if (stopping_) {
      // Drain: a task may have been pushed between the last try_pop and
      // acquiring the lock. Re-scan before exiting for good.
      lock.unlock();
      if (try_pop(index, task)) {
        task();
        continue;
      }
      return;
    }
    sleep_cv_.wait_for(lock, std::chrono::milliseconds{2});
  }
}

void ThreadPool::help_while(const std::function<bool()>& done) {
  // The helper has no deque of its own; self == queues_.size() makes
  // try_pop steal-only.
  const std::size_t self =
      tl_pool == this ? tl_worker : queues_.size();
  for (;;) {
    if (done()) return;
    Task task;
    if (try_pop(self, task)) {
      task();
      continue;
    }
    std::unique_lock lock{sleep_mutex_};
    if (done()) return;
    sleep_cv_.wait_for(lock, std::chrono::milliseconds{1});
  }
}

}  // namespace flattree::exec
