// Work-stealing thread pool for the experiment-execution engine.
//
// The evaluation grid of the paper (topology x mode x workload x seed) is
// embarrassingly parallel, as are the hot substrate loops beneath it
// (per-pair Yen's runs, (m, n) profiling cells, replicate simulations).
// This pool fans such tasks across cores: each worker owns a deque, pushes
// and pops work at its own back, and steals from the front of a victim's
// deque when it runs dry. Determinism is NOT this layer's job — tasks may
// run in any order on any thread; the parallel_map layer (exec/parallel.h)
// makes results order- and thread-count-independent by indexing tasks and
// deriving per-task RNG streams from (base_seed, task_index).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/sink.h"

namespace flattree::exec {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  // Spawns `threads` workers (at least 1). The pool is ready immediately.
  explicit ThreadPool(std::size_t threads);

  // Joins all workers after draining queued tasks.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  // Enqueues a task. Tasks submitted from a worker thread go to that
  // worker's own deque (depth-first, cache-friendly); external submissions
  // round-robin across workers. Throws std::runtime_error after shutdown
  // has begun.
  void submit(Task task);

  // Runs queued tasks on the calling thread until `done` returns true.
  // Used by fork-join helpers so the submitting thread contributes work
  // instead of blocking (and so a 1-worker pool cannot deadlock on nested
  // parallelism).
  void help_while(const std::function<bool()>& done);

  // Number of threads to use for `requested` (0 = one per hardware core).
  [[nodiscard]] static std::size_t resolve_threads(std::size_t requested);

  // Registers exec.pool.tasks / exec.pool.steals. Both are kDiagnostic:
  // which worker runs (or steals) a task is scheduling-dependent, so these
  // appear in the text summary but never in the deterministic metrics JSON.
  // Safe to call while workers are running (the handles are atomics).
  void attach_obs(const obs::ObsSink& sink);

 private:
  struct Worker {
    std::deque<Task> deque;
    std::mutex mutex;
  };

  // Pops from the back of `self`'s deque, else steals from the front of
  // another worker's. Returns false if every deque is empty.
  bool try_pop(std::size_t self, Task& out);
  void worker_loop(std::size_t index);

  std::vector<std::unique_ptr<Worker>> queues_;
  std::vector<std::thread> workers_;
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::size_t next_queue_{0};  // round-robin cursor for external submits
  bool stopping_{false};
  std::atomic<obs::Counter*> c_tasks_{nullptr};
  std::atomic<obs::Counter*> c_steals_{nullptr};
};

}  // namespace flattree::exec
