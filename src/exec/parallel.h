// Deterministic fork-join primitives over exec::ThreadPool.
//
// parallel_for / parallel_map index every task and store results by index,
// and task_rng derives each task's RNG stream purely from
// (base_seed, task_index) — never from thread ids or scheduling order — so
// a parallel run is bit-identical to the serial run for any thread count.
// This is the property the determinism tests (test_exec.cc) pin down and
// the BENCH_*.json byte-identity acceptance rests on.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <utility>
#include <vector>

#include "exec/pool.h"
#include "net/rng.h"

namespace flattree::exec {

// Seed of task `task_index`'s private RNG stream under `base_seed`.
// Statistically independent across indices (splitmix64-mixed), stable
// across platforms and thread counts.
[[nodiscard]] constexpr std::uint64_t task_seed(std::uint64_t base_seed,
                                                std::uint64_t task_index) {
  return mix64(base_seed, 0x65786563ULL /* "exec" */, task_index);
}

[[nodiscard]] inline Rng task_rng(std::uint64_t base_seed,
                                  std::uint64_t task_index) {
  return Rng{task_seed(base_seed, task_index)};
}

// Runs fn(0) .. fn(n-1), fanned across `pool` (serial when pool is null or
// single-threaded). Blocks until all iterations finish; the calling thread
// works too. If iterations throw, the exception of the lowest-index
// failing iteration is rethrown (a deterministic choice — the one the
// serial loop would have hit first); later iterations still run.
template <typename Fn>
void parallel_for(ThreadPool* pool, std::size_t n, Fn&& fn) {
  if (n == 0) return;
  if (pool == nullptr || pool->size() <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> active{0};  // shard tasks still running
    std::mutex error_mutex;
    std::exception_ptr error;
    std::size_t error_index{0};
  };
  State state;
  state.error_index = n;

  const auto run_shard = [&state, &fn, n] {
    for (;;) {
      const std::size_t i =
          state.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard lock{state.error_mutex};
        if (i < state.error_index) {
          state.error_index = i;
          state.error = std::current_exception();
        }
      }
    }
  };

  // One shard per worker (capped by n); the caller runs one itself and
  // then helps with unrelated queued work until the others retire.
  const std::size_t shards = std::min(n, pool->size());
  state.active.store(shards - 1, std::memory_order_relaxed);
  for (std::size_t s = 1; s < shards; ++s) {
    pool->submit([&state, run_shard] {
      run_shard();
      state.active.fetch_sub(1, std::memory_order_release);
    });
  }
  run_shard();
  pool->help_while([&state] {
    return state.active.load(std::memory_order_acquire) == 0;
  });
  if (state.error) std::rethrow_exception(state.error);
}

// Element-wise map: out[i] = fn(i). The result type must be
// default-constructible and movable. Ordering and values are identical to
// the serial loop for any thread count.
template <typename Fn>
[[nodiscard]] auto parallel_map(ThreadPool* pool, std::size_t n, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  std::vector<decltype(fn(std::size_t{0}))> out(n);
  parallel_for(pool, n, [&out, &fn](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace flattree::exec
