#include "exec/results.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace flattree::exec {
namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_fields(
    std::string& out,
    const std::vector<std::pair<std::string, JsonValue>>& fields) {
  bool first = true;
  for (const auto& [key, value] : fields) {
    if (!first) out.push_back(',');
    first = false;
    append_escaped(out, key);
    out.push_back(':');
    value.append_json(out);
  }
}

}  // namespace

void JsonValue::append_json(std::string& out) const {
  char buf[32];
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kInt: {
      const auto r = std::to_chars(buf, buf + sizeof(buf), int_);
      out.append(buf, r.ptr);
      return;
    }
    case Kind::kUint: {
      const auto r = std::to_chars(buf, buf + sizeof(buf), uint_);
      out.append(buf, r.ptr);
      return;
    }
    case Kind::kDouble: {
      if (!std::isfinite(double_)) {
        out += "null";
        return;
      }
      // Shortest round-trip decimal: deterministic and exact.
      const auto r = std::to_chars(buf, buf + sizeof(buf), double_);
      out.append(buf, r.ptr);
      return;
    }
    case Kind::kString:
      append_escaped(out, string_);
      return;
  }
}

void ResultRow::append_json(std::string& out) const {
  out.push_back('{');
  append_fields(out, fields_);
  out.push_back('}');
}

std::string BenchReport::to_json() const {
  std::string out;
  out += "{\"bench\":";
  append_escaped(out, bench);
  out += ",\"seed\":";
  JsonValue{seed}.append_json(out);
  if (!meta.empty()) {
    out.push_back(',');
    append_fields(out, meta);
  }
  if (!metrics_json.empty()) {
    out += ",\"metrics\":";
    out += metrics_json;
  }
  out += ",\"results\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += "\n  ";
    rows[i].append_json(out);
  }
  out += rows.empty() ? "]}" : "\n]}";
  out.push_back('\n');
  return out;
}

bool write_text_file(const std::string& content, const std::string& path,
                     std::string* error) {
  const std::string& payload = content;
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + tmp;
    return false;
  }
  const bool wrote =
      std::fwrite(payload.data(), 1, payload.size(), f) == payload.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    if (error != nullptr) *error = "short write to " + tmp;
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = "cannot rename " + tmp + " to " + path;
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool write_report(const BenchReport& report, const std::string& path,
                  std::string* error) {
  return write_text_file(report.to_json(), path, error);
}

}  // namespace flattree::exec
