#include "exec/runner.h"

#include <cstdio>

namespace flattree::exec {

ExperimentRunner::ExperimentRunner(RunnerOptions options)
    : options_{std::move(options)} {
  threads_ = ThreadPool::resolve_threads(options_.threads);
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_);

  if (options_.json_out != "none") {
    const std::string file = "BENCH_" + options_.name + ".json";
    if (options_.json_out.empty()) {
      json_path_ = file;
    } else if (options_.json_out.back() == '/') {
      json_path_ = options_.json_out + file;
    } else {
      json_path_ = options_.json_out;
    }
  }
  report_.bench = options_.name;
  report_.seed = options_.seed;

  if (!options_.metrics_out.empty()) {
    metrics_ = std::make_unique<obs::MetricsRegistry>();
  }
  if (!options_.trace_out.empty()) {
    tracer_ = std::make_unique<obs::EventTracer>();
  }
  sink_ = obs::ObsSink{metrics_.get(), tracer_.get()};
  if (pool_ != nullptr && sink_.enabled()) pool_->attach_obs(sink_);
}

ExperimentRunner::~ExperimentRunner() {
  if (!written_) write();
}

bool ExperimentRunner::write() {
  written_ = true;
  bool ok = true;
  std::string error;

  if (metrics_ != nullptr) {
    // Only deterministic-scope metrics reach the serialized outputs; the
    // full set (diagnostics included) goes to stderr with the timings.
    report_.metrics_json = metrics_->metrics_object_json();
    if (!write_text_file(metrics_->to_json(), options_.metrics_out, &error)) {
      std::fprintf(stderr, "[exec] %s: %s\n", options_.name.c_str(),
                   error.c_str());
      ok = false;
    } else {
      std::fprintf(stderr, "[exec] wrote metrics to %s\n",
                   options_.metrics_out.c_str());
    }
    std::fprintf(stderr, "[exec] metrics:\n%s",
                 metrics_->text_summary().c_str());
  }
  if (tracer_ != nullptr) {
    if (!tracer_->write_chrome_trace(options_.trace_out, &error)) {
      std::fprintf(stderr, "[exec] %s: %s\n", options_.name.c_str(),
                   error.c_str());
      ok = false;
    } else {
      std::fprintf(stderr, "[exec] wrote trace to %s (%zu events)\n",
                   options_.trace_out.c_str(), tracer_->size());
    }
    std::fprintf(stderr, "[exec] trace summary:\n%s",
                 tracer_->text_summary().c_str());
  }

  if (json_path_.empty()) return ok;
  if (!write_report(report_, json_path_, &error)) {
    std::fprintf(stderr, "[exec] %s: %s\n", options_.name.c_str(),
                 error.c_str());
    return false;
  }
  std::printf("[exec] wrote %s (%zu rows)\n", json_path_.c_str(),
              report_.rows.size());
  return ok;
}

void ExperimentRunner::note_stage(
    const std::string& stage, std::size_t cells,
    std::chrono::steady_clock::time_point start) const {
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // Timing goes to stderr: stdout stays a deterministic function of the
  // seed (the reproducibility probe diffs it across runs/thread counts).
  if (cells > 0) {
    std::fprintf(stderr, "[exec] %s: %zu cells on %zu thread%s in %.3f s\n",
                 stage.c_str(), cells, threads_, threads_ == 1 ? "" : "s",
                 seconds);
  } else {
    std::fprintf(stderr, "[exec] %s: %.3f s on %zu thread%s\n", stage.c_str(),
                 seconds, threads_, threads_ == 1 ? "" : "s");
  }
}

}  // namespace flattree::exec
