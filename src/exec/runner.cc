#include "exec/runner.h"

#include <cstdio>

namespace flattree::exec {

ExperimentRunner::ExperimentRunner(RunnerOptions options)
    : options_{std::move(options)} {
  threads_ = ThreadPool::resolve_threads(options_.threads);
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_);

  if (options_.json_out != "none") {
    const std::string file = "BENCH_" + options_.name + ".json";
    if (options_.json_out.empty()) {
      json_path_ = file;
    } else if (options_.json_out.back() == '/') {
      json_path_ = options_.json_out + file;
    } else {
      json_path_ = options_.json_out;
    }
  }
  report_.bench = options_.name;
  report_.seed = options_.seed;
}

ExperimentRunner::~ExperimentRunner() {
  if (!written_) write();
}

bool ExperimentRunner::write() {
  written_ = true;
  if (json_path_.empty()) return true;
  std::string error;
  if (!write_report(report_, json_path_, &error)) {
    std::fprintf(stderr, "[exec] %s: %s\n", options_.name.c_str(),
                 error.c_str());
    return false;
  }
  std::printf("[exec] wrote %s (%zu rows)\n", json_path_.c_str(),
              report_.rows.size());
  return true;
}

void ExperimentRunner::note_stage(
    const std::string& stage, std::size_t cells,
    std::chrono::steady_clock::time_point start) const {
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // Timing goes to stderr: stdout stays a deterministic function of the
  // seed (the reproducibility probe diffs it across runs/thread counts).
  if (cells > 0) {
    std::fprintf(stderr, "[exec] %s: %zu cells on %zu thread%s in %.3f s\n",
                 stage.c_str(), cells, threads_, threads_ == 1 ? "" : "s",
                 seconds);
  } else {
    std::fprintf(stderr, "[exec] %s: %.3f s on %zu thread%s\n", stage.c_str(),
                 seconds, threads_, threads_ == 1 ? "" : "s");
  }
}

}  // namespace flattree::exec
