// Machine-readable bench results.
//
// Every bench ported onto the ExperimentRunner emits BENCH_<name>.json
// next to its text table so the perf/fidelity trajectory can be tracked
// across commits by tooling instead of eyeballs. The serialization is
// deterministic — insertion-ordered fields, shortest-round-trip doubles —
// and the payload contains only experiment results (never thread counts or
// wall-clock times), so a run with --threads N is byte-identical to
// --threads 1.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace flattree::exec {

// Scalar JSON value. Doubles serialize via shortest-round-trip
// (std::to_chars); non-finite doubles serialize as null.
class JsonValue {
 public:
  JsonValue() = default;
  JsonValue(bool value) : kind_{Kind::kBool}, bool_{value} {}
  JsonValue(int value) : kind_{Kind::kInt}, int_{value} {}
  JsonValue(std::int64_t value) : kind_{Kind::kInt}, int_{value} {}
  JsonValue(std::uint32_t value)
      : kind_{Kind::kInt}, int_{static_cast<std::int64_t>(value)} {}
  JsonValue(std::uint64_t value) : kind_{Kind::kUint}, uint_{value} {}
  JsonValue(double value) : kind_{Kind::kDouble}, double_{value} {}
  JsonValue(std::string value)
      : kind_{Kind::kString}, string_{std::move(value)} {}
  JsonValue(const char* value) : kind_{Kind::kString}, string_{value} {}

  // Appends the JSON encoding of this value to `out`.
  void append_json(std::string& out) const;

 private:
  enum class Kind : std::uint8_t { kNull, kBool, kInt, kUint, kDouble, kString };

  Kind kind_{Kind::kNull};
  bool bool_{false};
  std::int64_t int_{0};
  std::uint64_t uint_{0};
  double double_{0.0};
  std::string string_;
};

// One experiment cell's results: an insertion-ordered set of named scalars
// (one JSON object per row).
class ResultRow {
 public:
  ResultRow& set(std::string key, JsonValue value) {
    fields_.emplace_back(std::move(key), std::move(value));
    return *this;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& fields()
      const {
    return fields_;
  }
  void append_json(std::string& out) const;

 private:
  std::vector<std::pair<std::string, JsonValue>> fields_;
};

// A full bench report: {"bench": ..., "seed": ..., <meta...>,
// ["metrics": {...},] "results": [<rows...>]}.
struct BenchReport {
  std::string bench;
  std::uint64_t seed{0};
  std::vector<std::pair<std::string, JsonValue>> meta;
  std::vector<ResultRow> rows;
  // Pre-serialized deterministic metrics object (from
  // obs::MetricsRegistry::metrics_object_json). Empty = no metrics block;
  // the report is then byte-identical to one built without observability.
  std::string metrics_json;

  [[nodiscard]] std::string to_json() const;
};

// Writes `content` to `path` atomically (rename from a sibling temp file).
// Returns false and fills `*error` on failure.
bool write_text_file(const std::string& content, const std::string& path,
                     std::string* error = nullptr);

// Writes `report.to_json()` to `path` (atomically via rename from a
// sibling temp file). Returns false and fills `*error` on failure.
bool write_report(const BenchReport& report, const std::string& path,
                  std::string* error = nullptr);

}  // namespace flattree::exec
