// ExperimentRunner: fans independent experiment cells across a
// work-stealing pool and serializes their results to BENCH_<name>.json
// alongside whatever table the bench prints.
//
// The runner owns the three knobs every bench shares — base seed, thread
// count, JSON output path — and guarantees that the result payload is a
// pure function of (bench code, base seed): cells are indexed, each cell's
// RNG stream is task_rng(base_seed, index), and rows are collected in index
// order. Thread count and stage wall-clock are observability only (printed,
// never serialized), so --threads N output is byte-identical to
// --threads 1.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/parallel.h"
#include "exec/pool.h"
#include "exec/results.h"
#include "net/rng.h"
#include "obs/sink.h"

namespace flattree::exec {

struct RunnerOptions {
  std::string name;          // bench name; JSON lands in BENCH_<name>.json
  std::uint64_t seed{20170821};
  std::uint32_t threads{0};  // 0 = one per hardware core
  // Where the JSON goes: "" = ./BENCH_<name>.json, "none" = disabled, a
  // path ending in '/' = that directory, anything else = literal file path.
  std::string json_out;
  // Observability outputs (both empty = observability fully disabled; the
  // bench's stdout and BENCH json are then byte-identical to a build
  // without the obs layer). metrics_out receives the deterministic metrics
  // JSON — byte-identical across --threads for a fixed seed — and also
  // folds a "metrics" block into BENCH_<name>.json; trace_out receives
  // Chrome trace_event JSON (load in chrome://tracing / ui.perfetto.dev).
  std::string metrics_out;
  std::string trace_out;
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(RunnerOptions options);

  // Writes the report on destruction if write() was not called explicitly.
  ~ExperimentRunner();

  ExperimentRunner(const ExperimentRunner&) = delete;
  ExperimentRunner& operator=(const ExperimentRunner&) = delete;

  // Null when running single-threaded; substrate hooks (PathCache
  // precompute, profile_mn) accept that and fall back to serial.
  [[nodiscard]] ThreadPool* pool() { return pool_.get(); }
  [[nodiscard]] std::size_t threads() const { return threads_; }
  [[nodiscard]] std::uint64_t seed() const { return options_.seed; }

  // The sink benches thread into simulators / controllers / caches.
  // Disabled (all-null) unless --metrics-out or --trace-out was given.
  [[nodiscard]] const obs::ObsSink& obs() const { return sink_; }

  // Deterministic per-stream RNG (stream = cell index or any stable id).
  [[nodiscard]] Rng rng(std::uint64_t stream) const {
    return task_rng(options_.seed, stream);
  }

  // Runs fn(index, rng) for each of `n` cells across the pool and records
  // the returned rows in index order. `stage` labels the printed timing
  // line. fn must be callable concurrently from multiple threads.
  template <typename Fn>
  std::vector<ResultRow> map_cells(const std::string& stage, std::size_t n,
                                   Fn&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<ResultRow> rows = parallel_map(
        pool_.get(), n, [this, &fn](std::size_t i) {
          Rng cell_rng = rng(i);
          return fn(i, cell_rng);
        });
    note_stage(stage, n, t0);
    for (const ResultRow& row : rows) report_.rows.push_back(row);
    return rows;
  }

  // Times an arbitrary stage (e.g. a parallel precompute) and prints the
  // same "[exec] stage ..." line map_cells does.
  template <typename Fn>
  auto timed_stage(const std::string& stage, Fn&& fn)
      -> decltype(fn()) {
    const auto t0 = std::chrono::steady_clock::now();
    if constexpr (std::is_void_v<decltype(fn())>) {
      fn();
      note_stage(stage, 0, t0);
    } else {
      auto result = fn();
      note_stage(stage, 0, t0);
      return result;
    }
  }

  // Appends a row / metadata outside map_cells (serial sections).
  void add_row(ResultRow row) { report_.rows.push_back(std::move(row)); }
  void add_meta(std::string key, JsonValue value) {
    report_.meta.emplace_back(std::move(key), std::move(value));
  }

  // Resolved BENCH_<name>.json path; empty when output is disabled.
  [[nodiscard]] const std::string& json_path() const { return json_path_; }

  // Writes the report now. Returns true on success (or when disabled).
  bool write();

 private:
  void note_stage(const std::string& stage, std::size_t cells,
                  std::chrono::steady_clock::time_point start) const;

  RunnerOptions options_;
  std::size_t threads_{1};
  std::unique_ptr<ThreadPool> pool_;  // null when threads_ == 1
  std::string json_path_;
  BenchReport report_;
  bool written_{false};
  // Owned observability state; allocated only when an obs output is on.
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::EventTracer> tracer_;
  obs::ObsSink sink_;
};

}  // namespace flattree::exec
