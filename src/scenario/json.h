// Minimal JSON for the scenario DSL, with precise source positions.
//
// Scenario files are hand-written and CI-gated, so the parser's job is
// diagnostics first: every node carries the 1-based line/column where it
// started, duplicate object keys are rejected, and any syntax error throws
// a ScenarioError whose message is "<file>:<line>:<col>: <what>". The
// grammar layer (scenario/spec.h) reuses the same error type, so a user
// always gets one uniform, clickable diagnostic — never a silent default.
//
// Supported: RFC 8259 objects/arrays/strings/numbers/true/false/null with
// \uXXXX escapes restricted to ASCII (scenario identifiers are plain). No
// comments, no trailing commas — files stay canonical-form friendly.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace flattree::scenario {

// The one diagnostic currency of the scenario subsystem: parse errors,
// grammar violations and compile-time schedule rejections all throw this.
class ScenarioError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct JsonNode {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind{Kind::kNull};
  bool bool_value{false};
  double number{0.0};
  std::string string;
  std::vector<JsonNode> items;                            // kArray
  std::vector<std::pair<std::string, JsonNode>> members;  // kObject, in order
  std::uint32_t line{1};
  std::uint32_t column{1};

  // Member lookup (kObject); null when absent.
  [[nodiscard]] const JsonNode* find(std::string_view key) const;
  // Human name of the kind ("number", "object", ...), for diagnostics.
  [[nodiscard]] const char* kind_name() const;
};

// Parses exactly one JSON value (plus surrounding whitespace). Throws
// ScenarioError with "<file>:<line>:<col>: ..." on any syntax error,
// duplicate key, or trailing content.
[[nodiscard]] JsonNode parse_json(std::string_view text,
                                  std::string_view file);

}  // namespace flattree::scenario
