#include "scenario/spec.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <initializer_list>
#include <span>
#include <sstream>
#include <vector>

#include "exec/results.h"

namespace flattree::scenario {
namespace {

// ---- diagnostics ------------------------------------------------------------

struct Ctx {
  std::string_view file;

  [[noreturn]] void fail(const JsonNode& node, const std::string& what) const {
    throw ScenarioError(std::string{file} + ":" + std::to_string(node.line) +
                        ":" + std::to_string(node.column) + ": " + what);
  }
};

std::string quoted(std::string_view s) {
  return "\"" + std::string{s} + "\"";
}

// "\"a\", \"b\" or \"c\"" for enum diagnostics.
std::string expected_list(std::initializer_list<std::string_view> names) {
  std::string out;
  std::size_t i = 0;
  for (const std::string_view name : names) {
    if (i > 0) out += (i + 1 == names.size()) ? " or " : ", ";
    out += quoted(name);
    ++i;
  }
  return out;
}

// ---- typed accessors --------------------------------------------------------

const JsonNode& require_key(const Ctx& ctx, const JsonNode& obj,
                            std::string_view key) {
  const JsonNode* node = obj.find(key);
  if (node == nullptr) {
    ctx.fail(obj, "missing required key " + quoted(key));
  }
  return *node;
}

void expect_kind(const Ctx& ctx, const JsonNode& node, JsonNode::Kind kind,
                 std::string_view key, const char* kind_name) {
  if (node.kind != kind) {
    ctx.fail(node, "key " + quoted(key) + ": expected " + kind_name +
                       ", got " + node.kind_name());
  }
}

std::string get_string(const Ctx& ctx, const JsonNode& node,
                       std::string_view key) {
  expect_kind(ctx, node, JsonNode::Kind::kString, key, "string");
  return node.string;
}

bool get_bool(const Ctx& ctx, const JsonNode& node, std::string_view key) {
  expect_kind(ctx, node, JsonNode::Kind::kBool, key, "bool");
  return node.bool_value;
}

double get_number(const Ctx& ctx, const JsonNode& node, std::string_view key) {
  expect_kind(ctx, node, JsonNode::Kind::kNumber, key, "number");
  return node.number;
}

std::uint64_t get_u64(const Ctx& ctx, const JsonNode& node,
                      std::string_view key) {
  const double v = get_number(ctx, node, key);
  if (!(v >= 0) || v != std::floor(v)) {
    ctx.fail(node, "key " + quoted(key) + ": expected a non-negative integer");
  }
  if (v > 9007199254740992.0) {  // 2^53: exact in a double
    ctx.fail(node, "key " + quoted(key) + ": value exceeds 2^53");
  }
  return static_cast<std::uint64_t>(v);
}

std::uint32_t get_u32(const Ctx& ctx, const JsonNode& node,
                      std::string_view key, std::uint32_t lo,
                      std::uint32_t hi) {
  const std::uint64_t v = get_u64(ctx, node, key);
  if (v < lo || v > hi) {
    ctx.fail(node, "key " + quoted(key) + ": value " + std::to_string(v) +
                       " out of range [" + std::to_string(lo) + ", " +
                       std::to_string(hi) + "]");
  }
  return static_cast<std::uint32_t>(v);
}

std::int32_t get_i32(const Ctx& ctx, const JsonNode& node,
                     std::string_view key, std::int32_t lo, std::int32_t hi) {
  const double v = get_number(ctx, node, key);
  if (v != std::floor(v) || !std::isfinite(v)) {
    ctx.fail(node, "key " + quoted(key) + ": expected an integer");
  }
  if (v < lo || v > hi) {
    ctx.fail(node, "key " + quoted(key) + ": value " +
                       std::to_string(static_cast<std::int64_t>(v)) +
                       " out of range [" + std::to_string(lo) + ", " +
                       std::to_string(hi) + "]");
  }
  return static_cast<std::int32_t>(v);
}

double get_positive(const Ctx& ctx, const JsonNode& node,
                    std::string_view key) {
  const double v = get_number(ctx, node, key);
  if (!(v > 0) || !std::isfinite(v)) {
    ctx.fail(node, "key " + quoted(key) + ": must be > 0");
  }
  return v;
}

double get_non_negative(const Ctx& ctx, const JsonNode& node,
                        std::string_view key) {
  const double v = get_number(ctx, node, key);
  if (!(v >= 0) || !std::isfinite(v)) {
    ctx.fail(node, "key " + quoted(key) + ": must be >= 0");
  }
  return v;
}

double get_fraction(const Ctx& ctx, const JsonNode& node,
                    std::string_view key) {
  const double v = get_number(ctx, node, key);
  if (!(v >= 0) || !(v <= 1)) {
    ctx.fail(node, "key " + quoted(key) + ": must lie in [0, 1]");
  }
  return v;
}

bool is_identifier(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
  });
}

void check_keys(const Ctx& ctx, const JsonNode& obj,
                std::initializer_list<std::string_view> allowed,
                const char* section) {
  for (const auto& [key, value] : obj.members) {
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      ctx.fail(value, "unknown key " + quoted(key) + " in " + section);
    }
  }
}

// ---- enums ------------------------------------------------------------------

const char* mode_name(PodMode mode) {
  switch (mode) {
    case PodMode::kClos: return "clos";
    case PodMode::kLocal: return "local";
    case PodMode::kGlobal: return "global";
  }
  return "?";
}

PodMode pod_mode_from(const Ctx& ctx, const JsonNode& node) {
  expect_kind(ctx, node, JsonNode::Kind::kString, "pod mode", "string");
  if (node.string == "clos") return PodMode::kClos;
  if (node.string == "local") return PodMode::kLocal;
  if (node.string == "global") return PodMode::kGlobal;
  ctx.fail(node, "unknown Pod mode " + quoted(node.string) + " (expected " +
                     expected_list({"clos", "local", "global"}) + ")");
}

TopologyKind topology_kind_from(const Ctx& ctx, const JsonNode& node) {
  const std::string s = get_string(ctx, node, "kind");
  if (s == "fat_tree") return TopologyKind::kFatTree;
  if (s == "flat_tree") return TopologyKind::kFlatTree;
  if (s == "random_graph") return TopologyKind::kRandomGraph;
  if (s == "two_stage") return TopologyKind::kTwoStage;
  ctx.fail(node,
           "key \"kind\": unknown topology kind " + quoted(s) + " (expected " +
               expected_list(
                   {"fat_tree", "flat_tree", "random_graph", "two_stage"}) +
               ")");
}

TrafficPattern traffic_pattern_from(const Ctx& ctx, const JsonNode& node) {
  const std::string s = get_string(ctx, node, "pattern");
  if (s == "permutation") return TrafficPattern::kPermutation;
  if (s == "incast") return TrafficPattern::kIncast;
  if (s == "class") return TrafficPattern::kClass;
  if (s == "three_tier") return TrafficPattern::kThreeTier;
  if (s == "trace") return TrafficPattern::kTrace;
  if (s == "tenant_churn") return TrafficPattern::kTenantChurn;
  ctx.fail(node, "key \"pattern\": unknown traffic pattern " + quoted(s) +
                     " (expected " +
                     expected_list({"permutation", "incast", "class",
                                    "three_tier", "trace", "tenant_churn"}) +
                     ")");
}

FailureKind failure_kind_from(const Ctx& ctx, const JsonNode& node) {
  const std::string s = get_string(ctx, node, "kind");
  if (s == "core_column") return FailureKind::kCoreColumn;
  if (s == "links") return FailureKind::kLinks;
  if (s == "switches") return FailureKind::kSwitches;
  if (s == "controller_crash") return FailureKind::kControllerCrash;
  if (s == "control_partition") return FailureKind::kControlPartition;
  ctx.fail(node,
           "key \"kind\": unknown failure kind " + quoted(s) + " (expected " +
               expected_list({"core_column", "links", "switches",
                              "controller_crash", "control_partition"}) +
               ")");
}

SloMetric slo_metric_from(const Ctx& ctx, const JsonNode& node) {
  const std::string s = get_string(ctx, node, "metric");
  if (s == "worst_fct_s") return SloMetric::kWorstFct;
  if (s == "p99_fct_s") return SloMetric::kP99Fct;
  if (s == "p50_fct_s") return SloMetric::kP50Fct;
  if (s == "mean_fct_s") return SloMetric::kMeanFct;
  if (s == "completed_frac") return SloMetric::kCompletedFrac;
  ctx.fail(node, "key \"metric\": unknown SLO metric " + quoted(s) +
                     " (expected " +
                     expected_list({"worst_fct_s", "p99_fct_s", "p50_fct_s",
                                    "mean_fct_s", "completed_frac"}) +
                     ")");
}

Engine engine_from(const Ctx& ctx, const JsonNode& node) {
  const std::string s = get_string(ctx, node, "engine");
  if (s == "fluid") return Engine::kFluid;
  if (s == "packet") return Engine::kPacket;
  if (s == "packet_sharded") return Engine::kPacketSharded;
  if (s == "autopilot") return Engine::kAutopilot;
  ctx.fail(node,
           "key \"engine\": unknown engine " + quoted(s) + " (expected " +
               expected_list({"fluid", "packet", "packet_sharded",
                              "autopilot"}) +
               ")");
}

RefreshMode refresh_from(const Ctx& ctx, const JsonNode& node) {
  const std::string s = get_string(ctx, node, "refresh");
  if (s == "repair") return RefreshMode::kRepair;
  if (s == "reroute") return RefreshMode::kReroute;
  if (s == "none") return RefreshMode::kNone;
  ctx.fail(node, "key \"refresh\": unknown refresh mode " + quoted(s) +
                     " (expected " +
                     expected_list({"repair", "reroute", "none"}) + ")");
}

// ---- sections ---------------------------------------------------------------

std::vector<PodMode> parse_mode_list(const Ctx& ctx, const JsonNode& node,
                                     std::string_view key,
                                     std::uint32_t pods) {
  expect_kind(ctx, node, JsonNode::Kind::kArray, key, "array");
  std::vector<PodMode> modes;
  modes.reserve(node.items.size());
  for (const JsonNode& item : node.items) {
    modes.push_back(pod_mode_from(ctx, item));
  }
  if (modes.size() != 1 && modes.size() != pods) {
    ctx.fail(node, "key " + quoted(key) + ": expected 1 or " +
                       std::to_string(pods) + " entries, got " +
                       std::to_string(modes.size()));
  }
  return modes;
}

TopologySpec parse_topology(const Ctx& ctx, const JsonNode& obj) {
  expect_kind(ctx, obj, JsonNode::Kind::kObject, "topology", "object");
  check_keys(ctx, obj,
             {"kind", "k", "servers_per_edge", "m", "n", "pod_modes",
              "wiring_seed"},
             "topology");
  TopologySpec spec;
  spec.kind = topology_kind_from(ctx, require_key(ctx, obj, "kind"));
  if (const JsonNode* node = obj.find("k")) {
    spec.k = get_u32(ctx, *node, "k", 4, 32);
    if (spec.k % 2 != 0) ctx.fail(*node, "key \"k\": must be even");
  }
  if (const JsonNode* node = obj.find("servers_per_edge")) {
    spec.servers_per_edge = get_u32(ctx, *node, "servers_per_edge", 1, 256);
  } else {
    spec.servers_per_edge = spec.k / 2;
  }
  const bool flat = spec.kind == TopologyKind::kFatTree ||
                    spec.kind == TopologyKind::kFlatTree;
  if (const JsonNode* node = obj.find("m")) {
    if (!flat) {
      ctx.fail(*node,
               "key \"m\" is only valid for kind \"fat_tree\" or "
               "\"flat_tree\"");
    }
    spec.m = get_u32(ctx, *node, "m", 0, 256);
  }
  if (const JsonNode* node = obj.find("n")) {
    if (!flat) {
      ctx.fail(*node,
               "key \"n\" is only valid for kind \"fat_tree\" or "
               "\"flat_tree\"");
    }
    spec.n = get_u32(ctx, *node, "n", 0, 256);
  }
  if (const JsonNode* node = obj.find("pod_modes")) {
    if (spec.kind != TopologyKind::kFlatTree) {
      ctx.fail(*node, "key \"pod_modes\" is only valid for kind \"flat_tree\"");
    }
    spec.pod_modes = parse_mode_list(ctx, *node, "pod_modes", spec.k);
  } else if (spec.kind == TopologyKind::kFlatTree) {
    spec.pod_modes = {PodMode::kClos};
  }
  if (const JsonNode* node = obj.find("wiring_seed")) {
    if (spec.kind != TopologyKind::kRandomGraph &&
        spec.kind != TopologyKind::kTwoStage) {
      ctx.fail(*node,
               "key \"wiring_seed\" is only valid for kind \"random_graph\" "
               "or \"two_stage\"");
    }
    spec.wiring_seed = get_u64(ctx, *node, "wiring_seed");
  }
  return spec;
}

// Keys each traffic pattern understands, beyond the shared
// pattern/class/seed/start_s quartet.
std::span<const std::string_view> pattern_keys(TrafficPattern pattern) {
  static constexpr std::string_view kPermutation[] = {"bytes"};
  static constexpr std::string_view kIncast[] = {
      "groups", "fanin", "requests", "period_s", "pod_local", "mean_bytes",
      "alpha", "max_bytes"};
  static constexpr std::string_view kClass[] = {
      "duration_s", "flows_per_s", "mean_bytes", "alpha", "max_bytes",
      "intra_rack_frac", "intra_pod_frac", "hot_pod", "hot_pod_frac"};
  static constexpr std::string_view kThreeTier[] = {
      "duration_s", "requests_per_s", "frontend_frac", "cache_frac",
      "request_bytes", "cache_reply_bytes", "storage_reply_bytes",
      "miss_frac", "think_s"};
  static constexpr std::string_view kTrace[] = {"profile", "duration_s",
                                                "flows_per_s"};
  static constexpr std::string_view kTenantChurn[] = {
      "duration_s", "arrivals_per_s", "mean_lifetime_s", "flows_per_s"};
  switch (pattern) {
    case TrafficPattern::kPermutation: return kPermutation;
    case TrafficPattern::kIncast: return kIncast;
    case TrafficPattern::kClass: return kClass;
    case TrafficPattern::kThreeTier: return kThreeTier;
    case TrafficPattern::kTrace: return kTrace;
    case TrafficPattern::kTenantChurn: return kTenantChurn;
  }
  return {};
}

bool any_pattern_has_key(std::string_view key) {
  for (const TrafficPattern p :
       {TrafficPattern::kPermutation, TrafficPattern::kIncast,
        TrafficPattern::kClass, TrafficPattern::kThreeTier,
        TrafficPattern::kTrace, TrafficPattern::kTenantChurn}) {
    const auto keys = pattern_keys(p);
    if (std::find(keys.begin(), keys.end(), key) != keys.end()) return true;
  }
  return false;
}

TrafficSpec parse_traffic_entry(const Ctx& ctx, const JsonNode& obj,
                                std::uint64_t default_seed) {
  expect_kind(ctx, obj, JsonNode::Kind::kObject, "traffic entry", "object");
  TrafficSpec spec;
  spec.pattern = traffic_pattern_from(ctx, require_key(ctx, obj, "pattern"));
  const auto allowed = pattern_keys(spec.pattern);
  for (const auto& [key, value] : obj.members) {
    if (key == "pattern" || key == "class" || key == "seed" ||
        key == "start_s") {
      continue;
    }
    if (std::find(allowed.begin(), allowed.end(), key) != allowed.end()) {
      continue;
    }
    if (any_pattern_has_key(key)) {
      ctx.fail(value, "key " + quoted(key) + " is not valid for pattern " +
                          quoted(to_string(spec.pattern)));
    }
    ctx.fail(value, "unknown key " + quoted(key) + " in traffic entry");
  }
  if (const JsonNode* node = obj.find("class")) {
    spec.tenant_class = get_string(ctx, *node, "class");
    if (!is_identifier(spec.tenant_class)) {
      ctx.fail(*node, "key \"class\": must match [a-z0-9_]+");
    }
  }
  spec.seed = default_seed;
  if (const JsonNode* node = obj.find("seed")) {
    spec.seed = get_u64(ctx, *node, "seed");
  }
  if (const JsonNode* node = obj.find("start_s")) {
    spec.start_s = get_non_negative(ctx, *node, "start_s");
  }
  const auto num = [&](const char* key, double& out,
                       double (*get)(const Ctx&, const JsonNode&,
                                     std::string_view)) {
    if (const JsonNode* node = obj.find(key)) out = get(ctx, *node, key);
  };
  switch (spec.pattern) {
    case TrafficPattern::kPermutation:
      num("bytes", spec.bytes, get_positive);
      break;
    case TrafficPattern::kIncast: {
      if (const JsonNode* node = obj.find("groups")) {
        spec.groups = get_u32(ctx, *node, "groups", 1, 4096);
      }
      if (const JsonNode* node = obj.find("fanin")) {
        spec.fanin = get_u32(ctx, *node, "fanin", 1, 4096);
      }
      if (const JsonNode* node = obj.find("requests")) {
        spec.requests = get_u32(ctx, *node, "requests", 1, 4096);
      }
      num("period_s", spec.period_s, get_positive);
      if (const JsonNode* node = obj.find("pod_local")) {
        spec.pod_local = get_bool(ctx, *node, "pod_local");
      }
      num("mean_bytes", spec.mean_bytes, get_positive);
      num("max_bytes", spec.max_bytes, get_positive);
      if (const JsonNode* node = obj.find("alpha")) {
        spec.alpha = get_number(ctx, *node, "alpha");
        if (!(spec.alpha > 1)) ctx.fail(*node, "key \"alpha\": must be > 1");
      }
      break;
    }
    case TrafficPattern::kClass: {
      num("duration_s", spec.duration_s, get_positive);
      num("flows_per_s", spec.flows_per_s, get_positive);
      num("mean_bytes", spec.mean_bytes, get_positive);
      num("max_bytes", spec.max_bytes, get_positive);
      if (const JsonNode* node = obj.find("alpha")) {
        spec.alpha = get_number(ctx, *node, "alpha");
        if (!(spec.alpha > 1)) ctx.fail(*node, "key \"alpha\": must be > 1");
      } else {
        spec.alpha = 1.6;
      }
      num("intra_rack_frac", spec.intra_rack_frac, get_fraction);
      num("intra_pod_frac", spec.intra_pod_frac, get_fraction);
      if (const JsonNode* node = obj.find("hot_pod")) {
        spec.hot_pod = get_i32(ctx, *node, "hot_pod", -1, 1 << 20);
      }
      num("hot_pod_frac", spec.hot_pod_frac, get_fraction);
      break;
    }
    case TrafficPattern::kThreeTier: {
      num("duration_s", spec.duration_s, get_positive);
      num("requests_per_s", spec.requests_per_s, get_positive);
      num("frontend_frac", spec.frontend_frac, get_fraction);
      num("cache_frac", spec.cache_frac, get_fraction);
      num("request_bytes", spec.request_bytes, get_positive);
      num("cache_reply_bytes", spec.cache_reply_bytes, get_positive);
      num("storage_reply_bytes", spec.storage_reply_bytes, get_positive);
      num("miss_frac", spec.miss_frac, get_fraction);
      num("think_s", spec.think_s, get_non_negative);
      break;
    }
    case TrafficPattern::kTrace: {
      const JsonNode& profile = require_key(ctx, obj, "profile");
      spec.profile = get_string(ctx, profile, "profile");
      if (spec.profile != "hadoop1" && spec.profile != "hadoop2" &&
          spec.profile != "web" && spec.profile != "cache") {
        ctx.fail(profile,
                 "key \"profile\": unknown trace profile " +
                     quoted(spec.profile) + " (expected " +
                     expected_list({"hadoop1", "hadoop2", "web", "cache"}) +
                     ")");
      }
      num("duration_s", spec.duration_s, get_positive);
      spec.flows_per_s = 1000.0;
      num("flows_per_s", spec.flows_per_s, get_positive);
      break;
    }
    case TrafficPattern::kTenantChurn: {
      spec.duration_s = 10.0;
      num("duration_s", spec.duration_s, get_positive);
      num("arrivals_per_s", spec.arrivals_per_s, get_positive);
      num("mean_lifetime_s", spec.mean_lifetime_s, get_positive);
      spec.flows_per_s = 800.0;
      num("flows_per_s", spec.flows_per_s, get_positive);
      break;
    }
  }
  return spec;
}

FailureSpec parse_failure_entry(const Ctx& ctx, const JsonNode& obj,
                                std::uint64_t default_seed) {
  expect_kind(ctx, obj, JsonNode::Kind::kObject, "failure entry", "object");
  FailureSpec spec;
  spec.kind = failure_kind_from(ctx, require_key(ctx, obj, "kind"));
  static constexpr std::string_view kShared[] = {"kind", "fail_at",
                                                 "recover_at", "flaps",
                                                 "period_s"};
  // A controller crash has no recovery window or flapping: the standby
  // takes over, the dead primary never comes back.
  static constexpr std::string_view kCrashShared[] = {"kind", "fail_at"};
  static constexpr std::string_view kCoreColumn[] = {"first", "count"};
  static constexpr std::string_view kLinks[] = {"fraction", "seed"};
  static constexpr std::string_view kSwitches[] = {"fraction", "role", "seed"};
  static constexpr std::string_view kControlPartition[] = {"first", "count"};
  const std::span<const std::string_view> shared =
      spec.kind == FailureKind::kControllerCrash
          ? std::span<const std::string_view>{kCrashShared}
          : std::span<const std::string_view>{kShared};
  std::span<const std::string_view> specific;
  switch (spec.kind) {
    case FailureKind::kCoreColumn:
      specific = kCoreColumn;
      break;
    case FailureKind::kLinks:
      specific = kLinks;
      break;
    case FailureKind::kSwitches:
      specific = kSwitches;
      break;
    case FailureKind::kControllerCrash:
      break;
    case FailureKind::kControlPartition:
      specific = kControlPartition;
      break;
  }
  for (const auto& [key, value] : obj.members) {
    if (std::find(shared.begin(), shared.end(), key) != shared.end()) continue;
    if (std::find(specific.begin(), specific.end(), key) != specific.end()) {
      continue;
    }
    ctx.fail(value, "key " + quoted(key) + " is not valid for failure kind " +
                        quoted(to_string(spec.kind)));
  }
  spec.fail_at = get_non_negative(ctx, require_key(ctx, obj, "fail_at"),
                                  "fail_at");
  if (const JsonNode* node = obj.find("recover_at")) {
    spec.recover_at = get_number(ctx, *node, "recover_at");
    if (!(spec.recover_at > spec.fail_at)) {
      ctx.fail(*node, "key \"recover_at\": must be greater than fail_at");
    }
  }
  switch (spec.kind) {
    case FailureKind::kCoreColumn:
    case FailureKind::kControlPartition:
      if (const JsonNode* node = obj.find("first")) {
        spec.first = get_u32(ctx, *node, "first", 0, 1 << 20);
      }
      spec.count =
          get_u32(ctx, require_key(ctx, obj, "count"), "count", 1, 1 << 20);
      break;
    case FailureKind::kControllerCrash:
      break;
    case FailureKind::kLinks:
    case FailureKind::kSwitches: {
      const JsonNode& fraction = require_key(ctx, obj, "fraction");
      spec.fraction = get_number(ctx, fraction, "fraction");
      if (!(spec.fraction > 0) || !(spec.fraction <= 1)) {
        ctx.fail(fraction, "key \"fraction\": must lie in (0, 1]");
      }
      if (spec.kind == FailureKind::kSwitches) {
        if (const JsonNode* node = obj.find("role")) {
          spec.role = get_string(ctx, *node, "role");
          if (spec.role != "edge" && spec.role != "agg" &&
              spec.role != "core") {
            ctx.fail(*node, "key \"role\": unknown switch role " +
                                quoted(spec.role) + " (expected " +
                                expected_list({"edge", "agg", "core"}) + ")");
          }
        }
      }
      spec.seed = default_seed;
      if (const JsonNode* node = obj.find("seed")) {
        spec.seed = get_u64(ctx, *node, "seed");
      }
      break;
    }
  }
  if (const JsonNode* node = obj.find("flaps")) {
    spec.flaps = get_u32(ctx, *node, "flaps", 1, 1024);
  }
  if (spec.flaps > 1) {
    if (spec.recover_at < 0) {
      ctx.fail(*obj.find("flaps"), "key \"flaps\": flapping requires recover_at");
    }
    const JsonNode& period = require_key(ctx, obj, "period_s");
    spec.period_s = get_positive(ctx, period, "period_s");
    if (!(spec.period_s > spec.recover_at - spec.fail_at)) {
      ctx.fail(period,
               "key \"period_s\": flap period must exceed recover_at - "
               "fail_at");
    }
  } else if (const JsonNode* node = obj.find("period_s")) {
    ctx.fail(*node, "key \"period_s\" requires flaps > 1");
  }
  return spec;
}

// Selector identity for the parse-time overlap check: two failure entries
// that would fail the *same* elements must not have overlapping windows
// (FailureSchedule would reject the double-fail mid-compile; we catch the
// statically-detectable case here with a source position).
std::string selector_identity(const FailureSpec& spec) {
  std::ostringstream id;
  id << to_string(spec.kind);
  switch (spec.kind) {
    case FailureKind::kCoreColumn:
    case FailureKind::kControlPartition:
      id << ":" << spec.first << ":" << spec.count;
      break;
    case FailureKind::kLinks:
      id << ":" << spec.fraction << ":" << spec.seed;
      break;
    case FailureKind::kSwitches:
      id << ":" << spec.fraction << ":" << spec.role << ":" << spec.seed;
      break;
    case FailureKind::kControllerCrash:
      // Identity is the kind itself; a crash never recovers, so any second
      // crash entry overlaps the first and is rejected — at most one per
      // scenario, by construction.
      break;
  }
  return id.str();
}

bool windows_overlap(const FailureSpec& a, const FailureSpec& b) {
  for (std::uint32_t i = 0; i < a.flaps; ++i) {
    const double a0 = a.fail_at + i * a.period_s;
    const double a1 =
        a.recover_at < 0 ? 1e300 : a.recover_at + i * a.period_s;
    for (std::uint32_t j = 0; j < b.flaps; ++j) {
      const double b0 = b.fail_at + j * b.period_s;
      const double b1 =
          b.recover_at < 0 ? 1e300 : b.recover_at + j * b.period_s;
      if (a0 < b1 && b0 < a1) return true;
    }
  }
  return false;
}

ConversionSpec parse_conversion(const Ctx& ctx, const JsonNode& obj,
                                const TopologySpec& topology,
                                std::uint64_t default_seed) {
  expect_kind(ctx, obj, JsonNode::Kind::kObject, "conversion", "object");
  if (topology.kind != TopologyKind::kFlatTree) {
    ctx.fail(obj, "conversion requires topology kind \"flat_tree\"");
  }
  check_keys(ctx, obj,
             {"at_s", "to", "staged", "stage_checkpoints", "ocs_partitions",
              "drop_probability", "channel_delay_s", "channel_timeout_s",
              "channel_backoff", "channel_jitter", "channel_max_attempts",
              "seed", "controllers", "ocs_s", "rule_delete_s", "rule_add_s"},
             "conversion");
  ConversionSpec spec;
  spec.present = true;
  spec.seed = default_seed;
  if (const JsonNode* node = obj.find("at_s")) {
    spec.at_s = get_non_negative(ctx, *node, "at_s");
  }
  spec.to = parse_mode_list(ctx, require_key(ctx, obj, "to"), "to", topology.k);
  if (const JsonNode* node = obj.find("staged")) {
    spec.staged = get_bool(ctx, *node, "staged");
  }
  if (const JsonNode* node = obj.find("stage_checkpoints")) {
    spec.stage_checkpoints = get_bool(ctx, *node, "stage_checkpoints");
    if (spec.stage_checkpoints && !spec.staged) {
      ctx.fail(*node, "key \"stage_checkpoints\" requires staged");
    }
  }
  if (const JsonNode* node = obj.find("ocs_partitions")) {
    spec.ocs_partitions = get_u32(ctx, *node, "ocs_partitions", 1, 64);
  }
  if (const JsonNode* node = obj.find("drop_probability")) {
    spec.drop_probability = get_number(ctx, *node, "drop_probability");
    if (!(spec.drop_probability >= 0) || !(spec.drop_probability < 1)) {
      ctx.fail(*node, "key \"drop_probability\": must lie in [0, 1)");
    }
  }
  // The remaining lossy-channel knobs are parsed for type only:
  // ControlChannelOptions::validate() is the single authority on channel
  // ranges, and the compiler calls it before any cell runs — so every
  // rejection message has exactly one home (and the regression tests pin
  // each one there).
  if (const JsonNode* node = obj.find("channel_delay_s")) {
    spec.channel_delay_s = get_number(ctx, *node, "channel_delay_s");
  }
  if (const JsonNode* node = obj.find("channel_timeout_s")) {
    spec.channel_timeout_s = get_number(ctx, *node, "channel_timeout_s");
  }
  if (const JsonNode* node = obj.find("channel_backoff")) {
    spec.channel_backoff = get_number(ctx, *node, "channel_backoff");
  }
  if (const JsonNode* node = obj.find("channel_jitter")) {
    spec.channel_jitter = get_number(ctx, *node, "channel_jitter");
  }
  if (const JsonNode* node = obj.find("channel_max_attempts")) {
    spec.channel_max_attempts =
        get_u32(ctx, *node, "channel_max_attempts", 0, 1 << 20);
  }
  if (const JsonNode* node = obj.find("seed")) {
    spec.seed = get_u64(ctx, *node, "seed");
  }
  if (const JsonNode* node = obj.find("controllers")) {
    spec.controllers = get_u32(ctx, *node, "controllers", 1, 4096);
  }
  // The per-operation delays deliberately get no parse-time range check:
  // ConversionDelayModel::validate() is the single authority on what a legal
  // delay model is, and the compiler invokes it (satellite: invalid embedded
  // models are rejected before any cell runs, with this file's name).
  if (const JsonNode* node = obj.find("ocs_s")) {
    spec.ocs_s = get_number(ctx, *node, "ocs_s");
  }
  if (const JsonNode* node = obj.find("rule_delete_s")) {
    spec.rule_delete_s = get_number(ctx, *node, "rule_delete_s");
  }
  if (const JsonNode* node = obj.find("rule_add_s")) {
    spec.rule_add_s = get_number(ctx, *node, "rule_add_s");
  }
  return spec;
}

SloSpec parse_slo(const Ctx& ctx, const JsonNode& obj,
                  const std::vector<TrafficSpec>& traffic) {
  expect_kind(ctx, obj, JsonNode::Kind::kObject, "slo entry", "object");
  check_keys(ctx, obj, {"class", "metric", "max", "min"}, "slo entry");
  SloSpec spec;
  if (const JsonNode* node = obj.find("class")) {
    spec.tenant_class = get_string(ctx, *node, "class");
    if (!spec.tenant_class.empty()) {
      const bool defined =
          std::any_of(traffic.begin(), traffic.end(), [&](const TrafficSpec& t) {
            return t.tenant_class == spec.tenant_class;
          });
      if (!defined) {
        ctx.fail(*node, "key \"class\": tenant class " +
                            quoted(spec.tenant_class) +
                            " is not defined by any traffic entry");
      }
    }
  }
  spec.metric = slo_metric_from(ctx, require_key(ctx, obj, "metric"));
  if (const JsonNode* node = obj.find("max")) {
    spec.has_max = true;
    spec.max_value = get_number(ctx, *node, "max");
  }
  if (const JsonNode* node = obj.find("min")) {
    spec.has_min = true;
    spec.min_value = get_number(ctx, *node, "min");
  }
  if (!spec.has_max && !spec.has_min) {
    ctx.fail(obj, "slo requires \"max\" or \"min\"");
  }
  if (spec.has_max && spec.has_min && spec.max_value < spec.min_value) {
    ctx.fail(*obj.find("max"), "key \"max\": must be >= min");
  }
  return spec;
}

SimSpec parse_sim(const Ctx& ctx, const JsonNode* obj,
                  const TopologySpec& topology) {
  const bool flat = topology.kind == TopologyKind::kFatTree ||
                    topology.kind == TopologyKind::kFlatTree;
  SimSpec spec;
  spec.refresh = flat ? RefreshMode::kRepair : RefreshMode::kReroute;
  if (obj == nullptr) return spec;
  expect_kind(ctx, *obj, JsonNode::Kind::kObject, "sim", "object");
  spec.engine = engine_from(ctx, require_key(ctx, *obj, "engine"));
  static constexpr std::string_view kShared[] = {"engine", "max_time_s",
                                                 "k_paths"};
  static constexpr std::string_view kFluid[] = {"refresh", "repair_lag_s",
                                                "controllers", "count_rules"};
  static constexpr std::string_view kAutopilot[] = {"epoch_s"};
  const std::span<const std::string_view> shared = kShared;
  std::span<const std::string_view> specific;
  switch (spec.engine) {
    case Engine::kFluid:
      specific = kFluid;
      break;
    case Engine::kPacket:
    case Engine::kPacketSharded:
      break;
    case Engine::kAutopilot:
      specific = kAutopilot;
      break;
  }
  for (const auto& [key, value] : obj->members) {
    if (std::find(shared.begin(), shared.end(), key) != shared.end()) continue;
    if (std::find(specific.begin(), specific.end(), key) != specific.end()) {
      continue;
    }
    ctx.fail(value, "key " + quoted(key) + " is not valid for engine " +
                        quoted(to_string(spec.engine)));
  }
  if (const JsonNode* node = obj->find("max_time_s")) {
    spec.max_time_s = get_positive(ctx, *node, "max_time_s");
  }
  if (const JsonNode* node = obj->find("k_paths")) {
    spec.k_paths = get_u32(ctx, *node, "k_paths", 1, 64);
  }
  if (const JsonNode* node = obj->find("refresh")) {
    spec.refresh = refresh_from(ctx, *node);
    if (spec.refresh == RefreshMode::kRepair && !flat) {
      ctx.fail(*node,
               "key \"refresh\": \"repair\" requires topology kind "
               "\"fat_tree\" or \"flat_tree\"");
    }
  }
  if (const JsonNode* node = obj->find("repair_lag_s")) {
    spec.repair_lag_s = get_non_negative(ctx, *node, "repair_lag_s");
  }
  if (const JsonNode* node = obj->find("controllers")) {
    spec.controllers = get_u32(ctx, *node, "controllers", 1, 4096);
  }
  if (const JsonNode* node = obj->find("count_rules")) {
    spec.count_rules = get_bool(ctx, *node, "count_rules");
  }
  if (const JsonNode* node = obj->find("epoch_s")) {
    spec.epoch_s = get_positive(ctx, *node, "epoch_s");
  }
  return spec;
}

}  // namespace

const char* to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kFatTree: return "fat_tree";
    case TopologyKind::kFlatTree: return "flat_tree";
    case TopologyKind::kRandomGraph: return "random_graph";
    case TopologyKind::kTwoStage: return "two_stage";
  }
  return "?";
}

const char* to_string(TrafficPattern pattern) {
  switch (pattern) {
    case TrafficPattern::kPermutation: return "permutation";
    case TrafficPattern::kIncast: return "incast";
    case TrafficPattern::kClass: return "class";
    case TrafficPattern::kThreeTier: return "three_tier";
    case TrafficPattern::kTrace: return "trace";
    case TrafficPattern::kTenantChurn: return "tenant_churn";
  }
  return "?";
}

const char* to_string(FailureKind kind) {
  switch (kind) {
    case FailureKind::kCoreColumn: return "core_column";
    case FailureKind::kLinks: return "links";
    case FailureKind::kSwitches: return "switches";
    case FailureKind::kControllerCrash: return "controller_crash";
    case FailureKind::kControlPartition: return "control_partition";
  }
  return "?";
}

const char* to_string(SloMetric metric) {
  switch (metric) {
    case SloMetric::kWorstFct: return "worst_fct_s";
    case SloMetric::kP99Fct: return "p99_fct_s";
    case SloMetric::kP50Fct: return "p50_fct_s";
    case SloMetric::kMeanFct: return "mean_fct_s";
    case SloMetric::kCompletedFrac: return "completed_frac";
  }
  return "?";
}

const char* to_string(Engine engine) {
  switch (engine) {
    case Engine::kFluid: return "fluid";
    case Engine::kPacket: return "packet";
    case Engine::kPacketSharded: return "packet_sharded";
    case Engine::kAutopilot: return "autopilot";
  }
  return "?";
}

const char* to_string(RefreshMode mode) {
  switch (mode) {
    case RefreshMode::kRepair: return "repair";
    case RefreshMode::kReroute: return "reroute";
    case RefreshMode::kNone: return "none";
  }
  return "?";
}

Scenario parse_scenario(std::string_view text, std::string_view file) {
  const Ctx ctx{file};
  const JsonNode root = parse_json(text, file);
  if (root.kind != JsonNode::Kind::kObject) {
    ctx.fail(root, std::string{"expected a scenario object, got "} +
                       root.kind_name());
  }
  check_keys(ctx, root,
             {"name", "seed", "expect", "topology", "traffic", "failures",
              "conversion", "slos", "sim"},
             "scenario");

  Scenario scenario;
  const JsonNode& name = require_key(ctx, root, "name");
  scenario.name = get_string(ctx, name, "name");
  if (!is_identifier(scenario.name)) {
    ctx.fail(name, "key \"name\": must match [a-z0-9_]+");
  }
  if (const JsonNode* node = root.find("seed")) {
    scenario.seed = get_u64(ctx, *node, "seed");
  }
  if (const JsonNode* node = root.find("expect")) {
    const std::string verdict = get_string(ctx, *node, "expect");
    if (verdict == "pass") {
      scenario.expect_pass = true;
    } else if (verdict == "fail") {
      scenario.expect_pass = false;
    } else {
      ctx.fail(*node, "key \"expect\": unknown verdict " + quoted(verdict) +
                          " (expected " + expected_list({"pass", "fail"}) +
                          ")");
    }
  }

  scenario.topology = parse_topology(ctx, require_key(ctx, root, "topology"));

  const JsonNode& traffic = require_key(ctx, root, "traffic");
  expect_kind(ctx, traffic, JsonNode::Kind::kArray, "traffic", "array");
  if (traffic.items.empty()) {
    ctx.fail(traffic, "key \"traffic\": at least one traffic entry is required");
  }
  for (std::size_t i = 0; i < traffic.items.size(); ++i) {
    scenario.traffic.push_back(
        parse_traffic_entry(ctx, traffic.items[i], scenario.seed + i));
  }

  const JsonNode* failures = root.find("failures");
  if (failures != nullptr) {
    expect_kind(ctx, *failures, JsonNode::Kind::kArray, "failures", "array");
    for (std::size_t i = 0; i < failures->items.size(); ++i) {
      scenario.failures.push_back(parse_failure_entry(
          ctx, failures->items[i], scenario.seed + 100 + i));
    }
    for (std::size_t i = 0; i < scenario.failures.size(); ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        if (selector_identity(scenario.failures[i]) ==
                selector_identity(scenario.failures[j]) &&
            windows_overlap(scenario.failures[i], scenario.failures[j])) {
          ctx.fail(failures->items[i],
                   "failure window overlaps an earlier window for the same "
                   "selector");
        }
      }
    }
  }

  const JsonNode* conversion = root.find("conversion");
  if (conversion != nullptr) {
    scenario.conversion =
        parse_conversion(ctx, *conversion, scenario.topology, scenario.seed);
  }

  if (const JsonNode* slos = root.find("slos")) {
    expect_kind(ctx, *slos, JsonNode::Kind::kArray, "slos", "array");
    for (const JsonNode& item : slos->items) {
      scenario.slos.push_back(parse_slo(ctx, item, scenario.traffic));
    }
  }

  scenario.sim = parse_sim(ctx, root.find("sim"), scenario.topology);

  // Cross-section engine constraints (positions point at the offending
  // section, not at "sim", so the diagnostic lands where the fix goes).
  if (scenario.sim.engine != Engine::kFluid) {
    if (failures != nullptr) {
      ctx.fail(*failures, "key \"failures\" is not supported by engine " +
                              quoted(to_string(scenario.sim.engine)));
    }
    if (conversion != nullptr) {
      ctx.fail(*conversion, "key \"conversion\" is not supported by engine " +
                                quoted(to_string(scenario.sim.engine)));
    }
  }
  for (std::size_t i = 0; i < scenario.failures.size(); ++i) {
    const FailureSpec& f = scenario.failures[i];
    const bool control = f.kind == FailureKind::kControllerCrash ||
                         f.kind == FailureKind::kControlPartition;
    if (!control) continue;
    // Control-plane chaos degrades the conversion's controllers, so it is
    // meaningless without a conversion in flight — and partitions demand
    // the staged protocol (the atomic baseline has no checkpoint to fall
    // back on, so the executor rejects the combination).
    if (!scenario.conversion.present) {
      ctx.fail(failures->items[i],
               "failure kind " + quoted(to_string(f.kind)) +
                   " requires a \"conversion\" section");
    }
    if (f.kind == FailureKind::kControlPartition) {
      if (!scenario.conversion.staged) {
        ctx.fail(failures->items[i],
                 "failure kind \"control_partition\" requires a staged "
                 "conversion");
      }
      if (f.first + f.count > scenario.topology.k) {
        ctx.fail(failures->items[i],
                 "failure kind \"control_partition\": pod range [first, "
                 "first + count) exceeds the topology's pods");
      }
    }
  }
  if (scenario.conversion.present && !scenario.failures.empty()) {
    for (std::size_t i = 0; i < scenario.failures.size(); ++i) {
      const FailureKind k = scenario.failures[i].kind;
      if (k != FailureKind::kLinks && k != FailureKind::kControllerCrash &&
          k != FailureKind::kControlPartition) {
        ctx.fail(failures->items[i],
                 "conversion scenarios support failure kinds \"links\", "
                 "\"controller_crash\" and \"control_partition\" only");
      }
    }
  }
  if (scenario.sim.engine == Engine::kAutopilot) {
    const JsonNode* slos = root.find("slos");
    for (std::size_t i = 0; i < scenario.slos.size(); ++i) {
      const SloSpec& slo = scenario.slos[i];
      if (!slo.tenant_class.empty() ||
          (slo.metric != SloMetric::kMeanFct &&
           slo.metric != SloMetric::kCompletedFrac)) {
        ctx.fail(slos->items[i],
                 "engine \"autopilot\" supports aggregate SLOs only "
                 "(class \"\", metric \"mean_fct_s\" or \"completed_frac\")");
      }
    }
  }
  if (scenario.sim.engine == Engine::kPacketSharded) {
    const JsonNode* slos = root.find("slos");
    for (std::size_t i = 0; i < scenario.slos.size(); ++i) {
      if (!scenario.slos[i].tenant_class.empty()) {
        ctx.fail(slos->items[i],
                 "engine \"packet_sharded\" supports class \"\" SLOs only");
      }
    }
  }
  return scenario;
}

Scenario parse_scenario_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    throw ScenarioError(path + ": cannot read file");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_scenario(buffer.str(), path);
}

// ---- canonical serialization ------------------------------------------------

namespace {

// Two-space-indented writer; numbers via exec::JsonValue (shortest
// round-trip doubles), exactly the encoding BENCH reports use.
class JsonWriter {
 public:
  void key(std::string_view k) {
    pre_item();
    out_ += '"';
    out_ += k;
    out_ += "\": ";
    just_keyed_ = true;
  }
  void value(exec::JsonValue v) {
    pre_item();
    v.append_json(out_);
  }
  void begin_object() { begin('{'); }
  void end_object() { end('}'); }
  void begin_array() { begin('['); }
  void end_array() { end(']'); }
  std::string take() {
    out_ += '\n';
    return std::move(out_);
  }

 private:
  void pre_item() {
    if (just_keyed_) {
      just_keyed_ = false;
      return;
    }
    if (!stack_.empty()) {
      out_ += stack_.back() ? ",\n" : "\n";
      stack_.back() = true;
      out_.append(stack_.size() * 2, ' ');
    }
  }
  void begin(char c) {
    pre_item();
    out_ += c;
    stack_.push_back(false);
  }
  void end(char c) {
    const bool any = stack_.back();
    stack_.pop_back();
    if (any) {
      out_ += '\n';
      out_.append(stack_.size() * 2, ' ');
    }
    out_ += c;
  }

  std::string out_;
  std::vector<bool> stack_;
  bool just_keyed_{false};
};

void write_mode_list(JsonWriter& w, std::string_view key,
                     const std::vector<PodMode>& modes) {
  w.key(key);
  w.begin_array();
  for (const PodMode mode : modes) w.value(mode_name(mode));
  w.end_array();
}

void write_topology(JsonWriter& w, const TopologySpec& t) {
  w.key("topology");
  w.begin_object();
  w.key("kind");
  w.value(to_string(t.kind));
  w.key("k");
  w.value(t.k);
  w.key("servers_per_edge");
  w.value(t.servers_per_edge);
  if (t.m != TopologySpec::kAuto) {
    w.key("m");
    w.value(t.m);
  }
  if (t.n != TopologySpec::kAuto) {
    w.key("n");
    w.value(t.n);
  }
  if (t.kind == TopologyKind::kFlatTree) {
    write_mode_list(w, "pod_modes", t.pod_modes);
  }
  if (t.kind == TopologyKind::kRandomGraph ||
      t.kind == TopologyKind::kTwoStage) {
    w.key("wiring_seed");
    w.value(t.wiring_seed);
  }
  w.end_object();
}

void write_traffic_entry(JsonWriter& w, const TrafficSpec& t) {
  w.begin_object();
  w.key("pattern");
  w.value(to_string(t.pattern));
  w.key("class");
  w.value(t.tenant_class);
  w.key("seed");
  w.value(t.seed);
  w.key("start_s");
  w.value(t.start_s);
  const auto num = [&](const char* key, double v) {
    w.key(key);
    w.value(v);
  };
  switch (t.pattern) {
    case TrafficPattern::kPermutation:
      num("bytes", t.bytes);
      break;
    case TrafficPattern::kIncast:
      w.key("groups");
      w.value(t.groups);
      w.key("fanin");
      w.value(t.fanin);
      w.key("requests");
      w.value(t.requests);
      num("period_s", t.period_s);
      w.key("pod_local");
      w.value(t.pod_local);
      num("mean_bytes", t.mean_bytes);
      num("alpha", t.alpha);
      num("max_bytes", t.max_bytes);
      break;
    case TrafficPattern::kClass:
      num("duration_s", t.duration_s);
      num("flows_per_s", t.flows_per_s);
      num("mean_bytes", t.mean_bytes);
      num("alpha", t.alpha);
      num("max_bytes", t.max_bytes);
      num("intra_rack_frac", t.intra_rack_frac);
      num("intra_pod_frac", t.intra_pod_frac);
      w.key("hot_pod");
      w.value(static_cast<std::int64_t>(t.hot_pod));
      num("hot_pod_frac", t.hot_pod_frac);
      break;
    case TrafficPattern::kThreeTier:
      num("duration_s", t.duration_s);
      num("requests_per_s", t.requests_per_s);
      num("frontend_frac", t.frontend_frac);
      num("cache_frac", t.cache_frac);
      num("request_bytes", t.request_bytes);
      num("cache_reply_bytes", t.cache_reply_bytes);
      num("storage_reply_bytes", t.storage_reply_bytes);
      num("miss_frac", t.miss_frac);
      num("think_s", t.think_s);
      break;
    case TrafficPattern::kTrace:
      w.key("profile");
      w.value(t.profile);
      num("duration_s", t.duration_s);
      num("flows_per_s", t.flows_per_s);
      break;
    case TrafficPattern::kTenantChurn:
      num("duration_s", t.duration_s);
      num("arrivals_per_s", t.arrivals_per_s);
      num("mean_lifetime_s", t.mean_lifetime_s);
      num("flows_per_s", t.flows_per_s);
      break;
  }
  w.end_object();
}

void write_failure_entry(JsonWriter& w, const FailureSpec& f) {
  w.begin_object();
  w.key("kind");
  w.value(to_string(f.kind));
  w.key("fail_at");
  w.value(f.fail_at);
  if (f.recover_at >= 0) {
    w.key("recover_at");
    w.value(f.recover_at);
  }
  switch (f.kind) {
    case FailureKind::kCoreColumn:
    case FailureKind::kControlPartition:
      w.key("first");
      w.value(f.first);
      w.key("count");
      w.value(f.count);
      break;
    case FailureKind::kLinks:
      w.key("fraction");
      w.value(f.fraction);
      break;
    case FailureKind::kSwitches:
      w.key("fraction");
      w.value(f.fraction);
      w.key("role");
      w.value(f.role);
      break;
    case FailureKind::kControllerCrash:
      break;
  }
  // controller_crash admits neither flapping nor a seed; materializing
  // either would break the canonical fixed point (the reparse rejects the
  // key).
  if (f.kind != FailureKind::kControllerCrash) {
    w.key("flaps");
    w.value(f.flaps);
    if (f.flaps > 1) {
      w.key("period_s");
      w.value(f.period_s);
    }
  }
  if (f.kind == FailureKind::kLinks || f.kind == FailureKind::kSwitches) {
    w.key("seed");
    w.value(f.seed);
  }
  w.end_object();
}

void write_conversion(JsonWriter& w, const ConversionSpec& c) {
  w.key("conversion");
  w.begin_object();
  w.key("at_s");
  w.value(c.at_s);
  write_mode_list(w, "to", c.to);
  w.key("staged");
  w.value(c.staged);
  w.key("stage_checkpoints");
  w.value(c.stage_checkpoints);
  w.key("ocs_partitions");
  w.value(c.ocs_partitions);
  w.key("drop_probability");
  w.value(c.drop_probability);
  w.key("channel_delay_s");
  w.value(c.channel_delay_s);
  w.key("channel_timeout_s");
  w.value(c.channel_timeout_s);
  w.key("channel_backoff");
  w.value(c.channel_backoff);
  w.key("channel_jitter");
  w.value(c.channel_jitter);
  w.key("channel_max_attempts");
  w.value(c.channel_max_attempts);
  w.key("seed");
  w.value(c.seed);
  w.key("controllers");
  w.value(c.controllers);
  w.key("ocs_s");
  w.value(c.ocs_s);
  w.key("rule_delete_s");
  w.value(c.rule_delete_s);
  w.key("rule_add_s");
  w.value(c.rule_add_s);
  w.end_object();
}

void write_slo(JsonWriter& w, const SloSpec& s) {
  w.begin_object();
  w.key("class");
  w.value(s.tenant_class);
  w.key("metric");
  w.value(to_string(s.metric));
  if (s.has_max) {
    w.key("max");
    w.value(s.max_value);
  }
  if (s.has_min) {
    w.key("min");
    w.value(s.min_value);
  }
  w.end_object();
}

void write_sim(JsonWriter& w, const SimSpec& s) {
  w.key("sim");
  w.begin_object();
  w.key("engine");
  w.value(to_string(s.engine));
  w.key("max_time_s");
  w.value(s.max_time_s);
  w.key("k_paths");
  w.value(s.k_paths);
  switch (s.engine) {
    case Engine::kFluid:
      w.key("refresh");
      w.value(to_string(s.refresh));
      if (s.repair_lag_s >= 0) {
        w.key("repair_lag_s");
        w.value(s.repair_lag_s);
      }
      w.key("controllers");
      w.value(s.controllers);
      w.key("count_rules");
      w.value(s.count_rules);
      break;
    case Engine::kPacket:
    case Engine::kPacketSharded:
      break;
    case Engine::kAutopilot:
      w.key("epoch_s");
      w.value(s.epoch_s);
      break;
  }
  w.end_object();
}

}  // namespace

std::string canonical_json(const Scenario& scenario) {
  JsonWriter w;
  w.begin_object();
  w.key("name");
  w.value(scenario.name);
  w.key("seed");
  w.value(scenario.seed);
  w.key("expect");
  w.value(scenario.expect_pass ? "pass" : "fail");
  write_topology(w, scenario.topology);
  w.key("traffic");
  w.begin_array();
  for (const TrafficSpec& t : scenario.traffic) write_traffic_entry(w, t);
  w.end_array();
  if (!scenario.failures.empty()) {
    w.key("failures");
    w.begin_array();
    for (const FailureSpec& f : scenario.failures) write_failure_entry(w, f);
    w.end_array();
  }
  if (scenario.conversion.present) {
    write_conversion(w, scenario.conversion);
  }
  if (!scenario.slos.empty()) {
    w.key("slos");
    w.begin_array();
    for (const SloSpec& s : scenario.slos) write_slo(w, s);
    w.end_array();
  }
  write_sim(w, scenario.sim);
  w.end_object();
  return w.take();
}

}  // namespace flattree::scenario
