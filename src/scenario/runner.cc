#include "scenario/runner.h"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

#include "control/autopilot/autopilot.h"
#include "control/conversion_exec.h"
#include "net/rng.h"
#include "routing/ksp.h"
#include "sim/fluid.h"
#include "sim/packet.h"
#include "sim/sharded.h"
#include "topo/random_graph.h"
#include "traffic/hostile.h"
#include "traffic/patterns.h"
#include "traffic/traces.h"

namespace flattree::scenario {
namespace {

[[noreturn]] void fail(std::string_view file, const std::string& what) {
  throw ScenarioError(std::string{file} + ": " + what);
}

// ---- compile: topology ------------------------------------------------------

std::shared_ptr<const FlatTree> build_tree(const TopologySpec& topo,
                                           const ClosParams& clos,
                                           std::string_view file) {
  FlatTreeParams params = FlatTreeParams::defaults_for(clos);
  params.clos = clos;
  if (topo.m != TopologySpec::kAuto) params.six_port_per_column = topo.m;
  if (topo.n != TopologySpec::kAuto) params.four_port_per_column = topo.n;
  try {
    params.validate();
    return std::make_shared<FlatTree>(params);
  } catch (const std::exception& e) {
    fail(file, std::string{"topology rejected: "} + e.what());
  }
}

ModeAssignment assignment_from(const std::vector<PodMode>& modes,
                               std::uint32_t pods) {
  if (modes.size() == 1) return ModeAssignment::uniform(pods, modes[0]);
  return ModeAssignment{modes};
}

// ---- compile: traffic -------------------------------------------------------

TraceParams trace_preset(const std::string& profile) {
  if (profile == "hadoop1") return TraceParams::hadoop1();
  if (profile == "hadoop2") return TraceParams::hadoop2();
  if (profile == "web") return TraceParams::web();
  return TraceParams::cache();  // parse_scenario validated the enum
}

Workload generate_entry(const TrafficSpec& t, const CompiledScenario& c) {
  switch (t.pattern) {
    case TrafficPattern::kPermutation: {
      Rng rng{t.seed};
      Workload flows = permutation_traffic(c.servers, rng);
      for (Flow& f : flows) {
        f.bytes = t.bytes;
        f.start_s = t.start_s;
      }
      return flows;
    }
    case TrafficPattern::kIncast: {
      IncastParams p;
      p.num_servers = c.servers;
      p.servers_per_pod = c.servers_per_pod;
      p.groups = t.groups;
      p.fanin = t.fanin;
      p.requests = t.requests;
      p.period_s = t.period_s;
      p.mean_bytes = t.mean_bytes;
      p.alpha = t.alpha;
      p.max_bytes = t.max_bytes;
      p.pod_local = t.pod_local;
      p.start_s = t.start_s;
      p.seed = t.seed;
      return incast_traffic(p);
    }
    case TrafficPattern::kClass: {
      TenantClassParams p;
      p.num_servers = c.servers;
      p.servers_per_rack = c.servers_per_rack;
      p.servers_per_pod = c.servers_per_pod;
      p.duration_s = t.duration_s;
      p.flows_per_s = t.flows_per_s;
      p.mean_bytes = t.mean_bytes;
      p.alpha = t.alpha;
      p.max_bytes = t.max_bytes;
      p.intra_rack_frac = t.intra_rack_frac;
      p.intra_pod_frac = t.intra_pod_frac;
      p.hot_pod = t.hot_pod;
      p.hot_pod_frac = t.hot_pod_frac;
      p.start_s = t.start_s;
      p.seed = t.seed;
      return tenant_class_traffic(p);
    }
    case TrafficPattern::kThreeTier: {
      ThreeTierParams p;
      p.num_servers = c.servers;
      p.duration_s = t.duration_s;
      p.requests_per_s = t.requests_per_s;
      p.frontend_frac = t.frontend_frac;
      p.cache_frac = t.cache_frac;
      p.request_bytes = t.request_bytes;
      p.cache_reply_bytes = t.cache_reply_bytes;
      p.storage_reply_bytes = t.storage_reply_bytes;
      p.miss_frac = t.miss_frac;
      p.think_s = t.think_s;
      p.start_s = t.start_s;
      p.seed = t.seed;
      return three_tier_traffic(p);
    }
    case TrafficPattern::kTrace: {
      TraceParams p = trace_preset(t.profile);
      p.duration_s = t.duration_s;
      p.flows_per_s = t.flows_per_s;
      p.seed = t.seed;
      Workload flows = generate_trace(c.clos, p);
      for (Flow& f : flows) f.start_s += t.start_s;
      return flows;
    }
    case TrafficPattern::kTenantChurn: {
      TenantChurnParams p;
      p.duration_s = t.duration_s;
      p.arrivals_per_s = t.arrivals_per_s;
      p.mean_lifetime_s = t.mean_lifetime_s;
      p.flows_per_s = t.flows_per_s;
      p.seed = t.seed;
      Workload flows = generate_tenant_churn(c.clos, p);
      for (Flow& f : flows) f.start_s += t.start_s;
      return flows;
    }
  }
  return {};
}

void merge_traffic(CompiledScenario& c, std::string_view file) {
  std::uint32_t group_base = 0;
  for (std::size_t i = 0; i < c.spec.traffic.size(); ++i) {
    const TrafficSpec& t = c.spec.traffic[i];
    Workload entry;
    try {
      entry = generate_entry(t, c);
    } catch (const std::invalid_argument& e) {
      fail(file, "traffic entry " + std::to_string(i) + " (\"" +
                     to_string(t.pattern) + "\") rejected: " + e.what());
    }
    std::uint32_t cls = 0;
    for (; cls < c.class_names.size(); ++cls) {
      if (c.class_names[cls] == t.tenant_class) break;
    }
    if (cls == c.class_names.size()) c.class_names.push_back(t.tenant_class);
    const auto base = static_cast<std::uint32_t>(c.flows.size());
    std::uint32_t next_group_base = group_base;
    for (Flow f : entry) {
      for (std::uint32_t& dep : f.depends_on) dep += base;
      if (f.group != Flow::kNoGroup) {
        f.group += group_base;
        next_group_base = std::max(next_group_base, f.group + 1);
      }
      c.flows.push_back(std::move(f));
      c.flow_class.push_back(cls);
    }
    group_base = next_group_base;
  }
}

// ---- compile: failure schedule ---------------------------------------------

NodeRole role_from(const std::string& role) {
  if (role == "edge") return NodeRole::kEdge;
  if (role == "agg") return NodeRole::kAgg;
  return NodeRole::kCore;  // parse_scenario validated the enum
}

void build_failures(CompiledScenario& c, std::string_view file) {
  const auto reject = [&](const std::string& what) {
    fail(file, "failure schedule rejected: " + what);
  };
  try {
    for (std::size_t i = 0; i < c.spec.failures.size(); ++i) {
      const FailureSpec& f = c.spec.failures[i];
      // Control-plane chaos never enters the data-plane schedule: it
      // compiles into ConversionFaults (build_control_faults).
      if (f.kind == FailureKind::kControllerCrash ||
          f.kind == FailureKind::kControlPartition) {
        continue;
      }
      FailureSet set;
      Rng rng{f.seed};
      switch (f.kind) {
        case FailureKind::kCoreColumn:
          set = core_column_failure(*c.base_graph, f.first, f.count);
          break;
        case FailureKind::kLinks:
          set.links = sample_fabric_failures(*c.base_graph, f.fraction, rng);
          break;
        case FailureKind::kSwitches:
          set.switches = sample_switch_failures(
              *c.base_graph, role_from(f.role), f.fraction, rng);
          break;
        case FailureKind::kControllerCrash:
        case FailureKind::kControlPartition:
          break;  // unreachable: skipped above
      }
      if (set.empty()) {
        reject("entry " + std::to_string(i) +
               " samples an empty failure set (fraction too small for this "
               "topology)");
      }
      for (std::uint32_t flap = 0; flap < f.flaps; ++flap) {
        const double shift = static_cast<double>(flap) * f.period_s;
        c.failures.fail_at(f.fail_at + shift, set);
        if (f.recover_at >= 0) {
          c.failures.recover_at(f.recover_at + shift, set);
        }
      }
    }
    c.failures.validate();
  } catch (const std::invalid_argument& e) {
    reject(e.what());
  }
}

// Control-plane failure entries -> the executor's fault description.
// controller_crash kills the primary at fail_at (earliest entry wins when a
// scenario is hand-edited into several; the grammar's overlap check already
// rejects that). control_partition islands Pods [first, first+count) per
// flap window; recover_at < 0 means the island never heals.
ConversionFaults build_control_faults(const CompiledScenario& c) {
  ConversionFaults faults;
  for (const FailureSpec& f : c.spec.failures) {
    switch (f.kind) {
      case FailureKind::kControllerCrash:
        faults.kill_primary_at_s =
            faults.kill_primary_at_s < 0.0
                ? f.fail_at
                : std::min(faults.kill_primary_at_s, f.fail_at);
        break;
      case FailureKind::kControlPartition:
        for (std::uint32_t flap = 0; flap < f.flaps; ++flap) {
          const double shift = static_cast<double>(flap) * f.period_s;
          for (std::uint32_t pod = f.first; pod < f.first + f.count; ++pod) {
            ControlPartition p;
            p.pod = PodId{pod};
            p.start_s = f.fail_at + shift;
            p.end_s = f.recover_at >= 0 ? f.recover_at + shift : -1.0;
            faults.partitions.push_back(p);
          }
        }
        break;
      default:
        break;
    }
  }
  return faults;
}

// ---- compile: cross checks --------------------------------------------------

void check_engine_constraints(const CompiledScenario& c,
                              std::string_view file) {
  const Engine engine = c.spec.sim.engine;
  if (engine == Engine::kAutopilot) {
    if (!c.tree) {
      fail(file,
           "engine \"autopilot\" requires topology kind \"fat_tree\" or "
           "\"flat_tree\"");
    }
    if (c.spec.sim.max_time_s > 600.0) {
      fail(file,
           "engine \"autopilot\" requires max_time_s in (0, 600] (decision "
           "epochs run serially)");
    }
  }
  if (engine == Engine::kPacket || engine == Engine::kPacketSharded) {
    for (const TrafficSpec& t : c.spec.traffic) {
      if (t.pattern == TrafficPattern::kThreeTier) {
        fail(file, std::string{"engine \""} + to_string(engine) +
                       "\" does not support pattern \"three_tier\" "
                       "(dependency-chained flows)");
      }
    }
  }
  if (engine == Engine::kPacketSharded) {
    for (std::size_t i = 0; i < c.flows.size(); ++i) {
      const Flow& f = c.flows[i];
      if (f.src / c.servers_per_pod != f.dst / c.servers_per_pod) {
        fail(file,
             "engine \"packet_sharded\" requires Pod-local traffic (flow " +
                 std::to_string(i) + " crosses Pods)");
      }
    }
  }
  if (!c.failures.empty() && engine == Engine::kFluid &&
      c.spec.sim.refresh == RefreshMode::kRepair &&
      !c.spec.conversion.present) {
    const bool single_window =
        c.spec.failures.size() == 1 && c.spec.failures[0].flaps == 1;
    if (!single_window) {
      fail(file,
           "refresh \"repair\" supports a single failure window (use "
           "refresh \"reroute\" for flapping or composite schedules)");
    }
  }
}

// ---- run: summaries ---------------------------------------------------------

// Same arithmetic as bench::percentile / bench::mean — the differential
// test (tests/test_scenario_diff.cc) pins scenario summaries byte-identical
// to bench_failure_recovery's values.
double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] * (1 - frac) + v[hi] * frac;
}

ClassSummary summarize(std::string name, std::size_t flows,
                       const std::vector<double>& fcts) {
  ClassSummary s;
  s.name = std::move(name);
  s.flows = flows;
  s.completed = fcts.size();
  for (double f : fcts) s.worst_fct_s = std::max(s.worst_fct_s, f);
  s.p99_fct_s = percentile(fcts, 99.0);
  s.p50_fct_s = percentile(fcts, 50.0);
  double sum = 0;
  for (double f : fcts) sum += f;
  s.mean_fct_s = fcts.empty() ? 0.0 : sum / static_cast<double>(fcts.size());
  return s;
}

// Aggregate + per-class summaries from per-flow (completed, fct) outcomes.
void summarize_flows(const CompiledScenario& c,
                     const std::vector<std::pair<bool, double>>& outcomes,
                     ScenarioResult& result) {
  std::vector<double> all;
  std::vector<std::vector<double>> per_class(c.class_names.size());
  std::vector<std::size_t> class_flows(c.class_names.size(), 0);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const std::uint32_t cls = c.flow_class[i];
    ++class_flows[cls];
    if (!outcomes[i].first) continue;
    all.push_back(outcomes[i].second);
    per_class[cls].push_back(outcomes[i].second);
  }
  result.aggregate = summarize("", outcomes.size(), all);
  for (std::size_t k = 0; k < c.class_names.size(); ++k) {
    result.classes.push_back(
        summarize(c.class_names[k], class_flows[k], per_class[k]));
  }
}

std::vector<std::pair<bool, double>> fluid_outcomes(
    const std::vector<FluidFlowResult>& results) {
  std::vector<std::pair<bool, double>> out;
  out.reserve(results.size());
  for (const FluidFlowResult& r : results) {
    out.emplace_back(r.completed, r.completed ? r.fct_s() : 0.0);
  }
  return out;
}

// ---- run: engine pipelines --------------------------------------------------

PathProvider mode_provider(const CompiledMode& mode) {
  return [&mode](NodeId src, NodeId dst, std::uint32_t) {
    return mode.paths().server_paths(src, dst);
  };
}

Controller make_controller(const CompiledScenario& c,
                           const RunOptions& options) {
  ControllerOptions opts;
  opts.k_global = opts.k_local = opts.k_clos = c.spec.sim.k_paths;
  opts.count_rules = c.spec.sim.count_rules;
  opts.delay = c.delay;
  opts.sink = options.sink;
  return Controller{FlatTree{c.tree->params()}, opts};
}

struct FluidRun {
  std::vector<FluidFlowResult> results;
  ScheduleRunStats sched;
  std::vector<std::pair<std::string, double>> extras;
};

FluidRun run_fluid(const CompiledScenario& c, const RunOptions& options) {
  FluidRun out;
  FluidOptions fluid_opts;
  fluid_opts.max_time_s = c.spec.sim.max_time_s;
  fluid_opts.sink = options.sink;
  const std::uint32_t k = c.spec.sim.k_paths;

  std::optional<Controller> controller;
  if (c.tree) controller.emplace(make_controller(c, options));

  // Conversion pipeline: execute the staged protocol, then replay its
  // timeline under the workload.
  if (c.spec.conversion.present) {
    const ConversionSpec& conv = c.spec.conversion;
    const CompiledMode from = controller->compile(c.assignment, k);
    const CompiledMode to = controller->compile(c.conversion_to, k);
    const std::vector<NodeId> servers = from.graph().servers();
    std::vector<std::pair<NodeId, NodeId>> pairs;
    pairs.reserve(c.flows.size());
    for (const Flow& f : c.flows) {
      pairs.emplace_back(servers[f.src], servers[f.dst]);
    }
    ConversionExecOptions exec_opts;
    exec_opts.staged = conv.staged;
    exec_opts.stage_checkpoints = conv.stage_checkpoints;
    exec_opts.ocs_partitions = conv.ocs_partitions;
    exec_opts.channel.drop_probability = conv.drop_probability;
    exec_opts.channel.delay_s = conv.channel_delay_s;
    exec_opts.channel.timeout_s = conv.channel_timeout_s;
    exec_opts.channel.backoff = conv.channel_backoff;
    exec_opts.channel.jitter = conv.channel_jitter;
    exec_opts.channel.max_attempts = conv.channel_max_attempts;
    exec_opts.seed = conv.seed;
    exec_opts.sink = options.sink;
    const ConversionFaults control_faults = build_control_faults(c);
    const ConversionExecutor executor{*controller, exec_opts};
    const ExecutionReport report =
        c.failures.empty()
            ? executor.execute(from, to, pairs, control_faults, conv.at_s)
            : executor.execute_under_storm(from, to, pairs, c.failures,
                                           control_faults, conv.at_s);
    out.results =
        run_fluid_with_conversion(report, c.flows, fluid_opts, &out.sched);
    out.extras.emplace_back("conv_finish_s", report.finish_s);
    out.extras.emplace_back("conv_blackhole_s", report.total_blackhole_s);
    out.extras.emplace_back("conv_retries", report.retries);
    out.extras.emplace_back("conv_replans", report.replans);
    out.extras.emplace_back("conv_stages_committed", report.stages_committed);
    out.extras.emplace_back("conv_stages_total", report.stages_total);
    out.extras.emplace_back("conv_outcome_code",
                            static_cast<double>(report.outcome));
    return out;
  }

  // Repair refresh: bench_failure_recovery's exact pipeline. The baseline
  // run warms the live mode's path cache (plan_repair's incremental
  // eviction statistics depend on it), plan_repair mutates `live` into the
  // repaired mode the refresh serves, and the scheduled run operates on the
  // union of the pre-failure and repaired realizations.
  if (!c.failures.empty() && c.spec.sim.refresh == RefreshMode::kRepair) {
    CompiledMode live = controller->compile(c.assignment, k);
    const FailureSet& set = c.failures.events().front().elements;
    FluidSimulator baseline{live.graph(), mode_provider(live), fluid_opts};
    const std::vector<FluidFlowResult> base_results = baseline.run(c.flows);
    std::vector<double> base_fcts;
    for (const FluidFlowResult& r : base_results) {
      if (r.completed) base_fcts.push_back(r.fct_s());
    }
    const RepairPlan plan =
        controller->plan_repair(live, set, RepairOptions{});
    const CompiledMode pre = controller->compile(c.assignment, k);
    const Graph sim_graph = graph_union(pre.graph(), *plan.graph);
    FluidSimulator sim{sim_graph, mode_provider(pre), fluid_opts};
    const double lag = c.spec.sim.repair_lag_s >= 0 ? c.spec.sim.repair_lag_s
                                                    : plan.total_s();
    const RoutingRefresh refresh = [&live](const Graph&) {
      return mode_provider(live);
    };
    out.results =
        sim.run_with_schedule(c.flows, c.failures, lag, refresh, &out.sched);
    double base_worst = 0;
    for (double f : base_fcts) base_worst = std::max(base_worst, f);
    double worst = 0;
    for (const FluidFlowResult& r : out.results) {
      if (r.completed) worst = std::max(worst, r.fct_s());
    }
    out.extras.emplace_back("base_worst_fct_s", base_worst);
    out.extras.emplace_back("base_p99_fct_s", percentile(base_fcts, 99.0));
    out.extras.emplace_back("inflation",
                            base_worst > 0 ? worst / base_worst : 0.0);
    out.extras.emplace_back("repair_lag_s", lag);
    out.extras.emplace_back("pairs_invalidated",
                            static_cast<double>(plan.pairs_invalidated));
    out.extras.emplace_back("pairs_retained",
                            static_cast<double>(plan.pairs_retained));
    return out;
  }

  // Plain / reroute / capacity-only pipelines share one provider setup.
  std::optional<CompiledMode> live;
  std::shared_ptr<PathCache> cache;
  PathProvider provider;
  const Graph* graph = c.base_graph.get();
  if (controller) {
    live.emplace(controller->compile(c.assignment, k));
    graph = &live->graph();
    provider = mode_provider(*live);
  } else {
    cache = std::make_shared<PathCache>(*c.base_graph, k);
    cache->attach_obs(options.sink);
    provider = [cache](NodeId src, NodeId dst, std::uint32_t) {
      return cache->server_paths(src, dst);
    };
  }
  FluidSimulator sim{*graph, provider, fluid_opts};
  if (c.failures.empty()) {
    out.results = sim.run(c.flows);
    return out;
  }
  const double lag =
      c.spec.sim.repair_lag_s >= 0 ? c.spec.sim.repair_lag_s : 0.1;
  RoutingRefresh refresh;  // null = capacity changes only
  if (c.spec.sim.refresh == RefreshMode::kReroute) {
    const obs::ObsSink sink = options.sink;
    refresh = [k, sink](const Graph& degraded) {
      auto degraded_cache = std::make_shared<PathCache>(degraded, k);
      degraded_cache->attach_obs(sink);
      return PathProvider{
          [degraded_cache](NodeId src, NodeId dst, std::uint32_t) {
            return degraded_cache->server_paths(src, dst);
          }};
    };
  }
  out.results =
      sim.run_with_schedule(c.flows, c.failures, lag, refresh, &out.sched);
  return out;
}

void run_packet(const CompiledScenario& c, const RunOptions& options,
                ScenarioResult& result) {
  PacketSim sim;
  sim.attach_obs(options.sink);
  sim.set_network(*c.base_graph);
  PathCache cache{*c.base_graph, c.spec.sim.k_paths};
  cache.attach_obs(options.sink);
  for (const Flow& f : c.flows) {
    sim.add_flow(f.src, f.dst, f.bytes, f.start_s,
                 cache.server_paths(NodeId{f.src}, NodeId{f.dst}));
  }
  sim.run_until(c.spec.sim.max_time_s);
  std::vector<std::pair<bool, double>> outcomes;
  outcomes.reserve(c.flows.size());
  for (std::size_t i = 0; i < c.flows.size(); ++i) {
    const auto fi = static_cast<std::uint32_t>(i);
    const bool done = sim.flow_completed(fi);
    outcomes.emplace_back(
        done, done ? sim.flow_finish_time(fi) - sim.flow_start_time(fi) : 0.0);
  }
  summarize_flows(c, outcomes, result);
  result.extras.emplace_back("packets_dropped",
                             static_cast<double>(sim.packets_dropped()));
  result.extras.emplace_back("bytes_acked",
                             static_cast<double>(sim.total_bytes_acked()));
}

void run_packet_sharded(const CompiledScenario& c, const RunOptions& options,
                        ScenarioResult& result) {
  const std::uint32_t shards = c.clos.pods;
  std::vector<std::vector<std::uint32_t>> pod_flows(shards);
  for (std::size_t i = 0; i < c.flows.size(); ++i) {
    pod_flows[c.flows[i].src / c.servers_per_pod].push_back(
        static_cast<std::uint32_t>(i));
  }
  const std::uint32_t k = c.spec.sim.k_paths;
  const ShardedPacketSim sharded{*c.base_graph, PacketSimOptions{},
                                 c.spec.seed};
  const ShardedPacketSim::ShardBuilder builder =
      [&](std::uint32_t shard, PacketSim& sim, Rng&) {
        PathCache cache{*c.base_graph, k};
        for (const std::uint32_t idx : pod_flows[shard]) {
          const Flow& f = c.flows[idx];
          sim.add_flow(f.src, f.dst, f.bytes, f.start_s,
                       cache.server_paths(NodeId{f.src}, NodeId{f.dst}));
        }
      };
  const ShardedRunStats stats = sharded.run(
      shards, builder, c.spec.sim.max_time_s, options.pool, options.sink);
  result.aggregate = summarize("", stats.flows, stats.fcts_s);
  result.extras.emplace_back("shards", shards);
  result.extras.emplace_back("packets_dropped",
                             static_cast<double>(stats.packets_dropped));
  result.extras.emplace_back("bytes_acked",
                             static_cast<double>(stats.bytes_acked));
}

void run_autopilot(const CompiledScenario& c, const RunOptions& options,
                   ScenarioResult& result) {
  const Controller controller = make_controller(c, options);
  AutopilotOptions opts;
  opts.epoch_s = c.spec.sim.epoch_s;
  opts.exec.stage_checkpoints = true;
  opts.exec.seed = c.spec.seed;
  opts.exec.sink = options.sink;
  opts.sink = options.sink;
  const AutopilotLoop loop{controller, opts};
  const AutopilotResult r =
      loop.run(c.flows, c.assignment, c.spec.sim.max_time_s);
  result.aggregate.flows = r.flows;
  result.aggregate.completed = r.completed;
  result.aggregate.mean_fct_s =
      r.completed > 0 ? r.fct_sum_s / static_cast<double>(r.completed) : 0.0;
  result.extras.emplace_back("ap_epochs",
                             static_cast<double>(r.epochs.size()));
  result.extras.emplace_back("ap_conversions_started", r.conversions_started);
  result.extras.emplace_back("ap_conversions_committed",
                             r.conversions_committed);
  std::string final_modes;
  for (const PodMode m : r.final_assignment.pod_modes) {
    final_modes +=
        m == PodMode::kClos ? 'C' : (m == PodMode::kLocal ? 'L' : 'G');
  }
  result.row.set("final_modes_pending", final_modes);  // moved below
}

// ---- run: SLOs + row --------------------------------------------------------

const ClassSummary& summary_for(const ScenarioResult& result,
                                const std::string& tenant_class) {
  if (tenant_class.empty()) return result.aggregate;
  for (const ClassSummary& s : result.classes) {
    if (s.name == tenant_class) return s;
  }
  return result.aggregate;  // unreachable: parse validated class names
}

double metric_value(const ClassSummary& s, SloMetric metric) {
  switch (metric) {
    case SloMetric::kWorstFct: return s.worst_fct_s;
    case SloMetric::kP99Fct: return s.p99_fct_s;
    case SloMetric::kP50Fct: return s.p50_fct_s;
    case SloMetric::kMeanFct: return s.mean_fct_s;
    case SloMetric::kCompletedFrac: return s.completed_frac();
  }
  return 0.0;
}

void evaluate_slos(const CompiledScenario& c, ScenarioResult& result) {
  for (const SloSpec& slo : c.spec.slos) {
    SloVerdict verdict;
    verdict.spec = slo;
    verdict.value = metric_value(summary_for(result, slo.tenant_class),
                                 slo.metric);
    verdict.pass = (!slo.has_max || verdict.value <= slo.max_value) &&
                   (!slo.has_min || verdict.value >= slo.min_value);
    result.slos_pass = result.slos_pass && verdict.pass;
    result.slos.push_back(verdict);
  }
  result.matches_expect = result.slos_pass == c.spec.expect_pass;
}

void emit_summary_fields(exec::ResultRow& row, const std::string& prefix,
                         const ClassSummary& s) {
  row.set(prefix + "flows", static_cast<std::uint64_t>(s.flows))
      .set(prefix + "completed", static_cast<std::uint64_t>(s.completed))
      .set(prefix + "completed_frac", s.completed_frac())
      .set(prefix + "worst_fct_s", s.worst_fct_s)
      .set(prefix + "p99_fct_s", s.p99_fct_s)
      .set(prefix + "p50_fct_s", s.p50_fct_s)
      .set(prefix + "mean_fct_s", s.mean_fct_s);
}

void build_row(const CompiledScenario& c, ScenarioResult& result) {
  exec::ResultRow row;
  row.set("scenario", result.name)
      .set("engine", to_string(c.spec.sim.engine))
      .set("topology", to_string(c.spec.topology.kind))
      .set("servers", static_cast<std::uint64_t>(c.servers));
  emit_summary_fields(row, "", result.aggregate);
  for (const auto& [key, value] : result.extras) row.set(key, value);
  // Per-class blocks whenever the scenario defines a class structure beyond
  // the single implicit "default".
  const bool trivial_classes =
      result.classes.size() <= 1 &&
      (result.classes.empty() || result.classes[0].name == "default");
  if (!trivial_classes) {
    for (const ClassSummary& s : result.classes) {
      emit_summary_fields(row, "c." + s.name + ".", s);
    }
  }
  for (std::size_t i = 0; i < result.slos.size(); ++i) {
    const SloVerdict& v = result.slos[i];
    const std::string p = "slo." + std::to_string(i) + ".";
    row.set(p + "class", v.spec.tenant_class)
        .set(p + "metric", to_string(v.spec.metric))
        .set(p + "value", v.value)
        .set(p + "pass", v.pass);
  }
  row.set("slos_pass", result.slos_pass)
      .set("expect", c.spec.expect_pass ? "pass" : "fail")
      .set("matches_expect", result.matches_expect);
  // Preserve any string fields an engine pipeline staged on the result row
  // (autopilot's final_modes) by appending them after the verdicts.
  for (const auto& [key, value] : result.row.fields()) {
    if (key == "final_modes_pending") row.set("final_modes", value);
  }
  result.row = std::move(row);
}

}  // namespace

CompiledScenario compile_scenario(const Scenario& spec,
                                  std::string_view file) {
  CompiledScenario c;
  c.spec = spec;
  c.file = std::string{file};

  // Topology: the Clos device budget plus (for flat kinds) the tree.
  ClosParams clos = ClosParams::fat_tree(spec.topology.k);
  clos.servers_per_edge = spec.topology.servers_per_edge;
  try {
    clos.validate();
  } catch (const std::exception& e) {
    fail(file, std::string{"topology rejected: "} + e.what());
  }
  c.clos = clos;
  c.servers = clos.total_servers();
  c.servers_per_rack = clos.servers_per_edge;
  c.servers_per_pod = clos.servers_per_edge * clos.edge_per_pod;

  switch (spec.topology.kind) {
    case TopologyKind::kFatTree:
      c.tree = build_tree(spec.topology, clos, file);
      c.assignment = ModeAssignment::uniform(clos.pods, PodMode::kClos);
      c.base_graph =
          std::make_shared<const Graph>(c.tree->realize(c.assignment));
      break;
    case TopologyKind::kFlatTree:
      c.tree = build_tree(spec.topology, clos, file);
      c.assignment = assignment_from(spec.topology.pod_modes, clos.pods);
      c.base_graph =
          std::make_shared<const Graph>(c.tree->realize(c.assignment));
      break;
    case TopologyKind::kRandomGraph:
      try {
        c.base_graph = std::make_shared<const Graph>(
            build_random_graph_from_clos(clos, spec.topology.wiring_seed));
      } catch (const std::exception& e) {
        fail(file, std::string{"topology rejected: "} + e.what());
      }
      break;
    case TopologyKind::kTwoStage:
      try {
        TwoStageParams two = TwoStageParams::from_clos(clos);
        two.seed = spec.topology.wiring_seed;
        c.base_graph =
            std::make_shared<const Graph>(build_two_stage_random_graph(two));
      } catch (const std::exception& e) {
        fail(file, std::string{"topology rejected: "} + e.what());
      }
      break;
  }

  merge_traffic(c, file);
  build_failures(c, file);

  if (spec.conversion.present) {
    c.conversion_to = assignment_from(spec.conversion.to, clos.pods);
    c.delay.ocs_reconfigure_s = spec.conversion.ocs_s;
    c.delay.rule_delete_s = spec.conversion.rule_delete_s;
    c.delay.rule_add_s = spec.conversion.rule_add_s;
    c.delay.controllers = spec.conversion.controllers;
    // The grammar parses the channel knobs for type only; the channel is
    // the single authority on its ranges, so out-of-range values are
    // rejected here with the channel's own message (pinned by the parse
    // regression tests).
    ControlChannelOptions channel;
    channel.drop_probability = spec.conversion.drop_probability;
    channel.delay_s = spec.conversion.channel_delay_s;
    channel.timeout_s = spec.conversion.channel_timeout_s;
    channel.backoff = spec.conversion.channel_backoff;
    channel.jitter = spec.conversion.channel_jitter;
    channel.max_attempts = spec.conversion.channel_max_attempts;
    try {
      channel.validate();
    } catch (const std::invalid_argument& e) {
      fail(file, std::string{"conversion channel rejected: "} + e.what());
    }
  } else {
    c.delay = ConversionDelayModel{};
    c.delay.controllers = spec.sim.controllers;
  }
  try {
    c.delay.validate();
  } catch (const std::invalid_argument& e) {
    fail(file, std::string{"conversion delay model rejected: "} + e.what());
  }

  check_engine_constraints(c, file);
  return c;
}

CompiledScenario compile_scenario_file(const std::string& path) {
  return compile_scenario(parse_scenario_file(path), path);
}

ScenarioResult run_scenario(const CompiledScenario& c,
                            const RunOptions& options) {
  ScenarioResult result;
  result.name = c.spec.name;
  switch (c.spec.sim.engine) {
    case Engine::kFluid: {
      FluidRun run = run_fluid(c, options);
      summarize_flows(c, fluid_outcomes(run.results), result);
      result.extras = std::move(run.extras);
      if (!c.failures.empty() || c.spec.conversion.present) {
        result.extras.emplace_back("fail_events", run.sched.fail_events);
        result.extras.emplace_back("recover_events", run.sched.recover_events);
        result.extras.emplace_back("refreshes", run.sched.refreshes);
        result.extras.emplace_back("reroutes", run.sched.reroutes);
        result.extras.emplace_back("black_holed", run.sched.black_holed);
      }
      break;
    }
    case Engine::kPacket:
      run_packet(c, options, result);
      break;
    case Engine::kPacketSharded:
      run_packet_sharded(c, options, result);
      break;
    case Engine::kAutopilot:
      run_autopilot(c, options, result);
      break;
  }
  evaluate_slos(c, result);
  build_row(c, result);
  return result;
}

}  // namespace flattree::scenario
