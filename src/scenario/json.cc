#include "scenario/json.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace flattree::scenario {
namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string_view file)
      : text_{text}, file_{file} {}

  JsonNode parse() {
    skip_ws();
    JsonNode root = parse_value();
    skip_ws();
    if (pos_ < text_.size()) {
      fail_here("trailing content after the top-level value");
    }
    return root;
  }

 private:
  [[noreturn]] void fail_at(std::uint32_t line, std::uint32_t column,
                            const std::string& what) const {
    throw ScenarioError(std::string{file_} + ":" + std::to_string(line) +
                        ":" + std::to_string(column) + ": " + what);
  }
  [[noreturn]] void fail_here(const std::string& what) const {
    fail_at(line_, column_, what);
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  char advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        advance();
      } else {
        break;
      }
    }
  }

  void expect(char c, const char* where) {
    if (eof() || peek() != c) {
      fail_here(std::string{"expected '"} + c + "' " + where);
    }
    advance();
  }

  JsonNode parse_value() {
    if (eof()) fail_here("unexpected end of input");
    JsonNode node;
    node.line = line_;
    node.column = column_;
    const char c = peek();
    switch (c) {
      case '{':
        parse_object(node);
        break;
      case '[':
        parse_array(node);
        break;
      case '"':
        node.kind = JsonNode::Kind::kString;
        node.string = parse_string();
        break;
      case 't':
        parse_keyword("true");
        node.kind = JsonNode::Kind::kBool;
        node.bool_value = true;
        break;
      case 'f':
        parse_keyword("false");
        node.kind = JsonNode::Kind::kBool;
        node.bool_value = false;
        break;
      case 'n':
        parse_keyword("null");
        node.kind = JsonNode::Kind::kNull;
        break;
      default:
        if (c == '-' || (c >= '0' && c <= '9')) {
          node.kind = JsonNode::Kind::kNumber;
          node.number = parse_number();
        } else {
          fail_here(std::string{"unexpected character '"} + c + "'");
        }
    }
    return node;
  }

  void parse_keyword(std::string_view word) {
    for (const char c : word) {
      if (eof() || peek() != c) {
        fail_here("invalid literal (expected \"" + std::string{word} + "\")");
      }
      advance();
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') advance();
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      fail_here("malformed number");
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
      advance();
    }
    if (!eof() && peek() == '.') {
      advance();
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        fail_here("malformed number (digit required after '.')");
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        advance();
      }
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      advance();
      if (!eof() && (peek() == '+' || peek() == '-')) advance();
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        fail_here("malformed number (digit required in exponent)");
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        advance();
      }
    }
    const std::string slice{text_.substr(start, pos_ - start)};
    return std::strtod(slice.c_str(), nullptr);
  }

  std::string parse_string() {
    expect('"', "to open a string");
    std::string out;
    for (;;) {
      if (eof()) fail_here("unterminated string");
      const char c = advance();
      if (c == '"') return out;
      if (c == '\n') fail_here("unterminated string (newline inside)");
      if (c == '\\') {
        if (eof()) fail_here("unterminated escape");
        const char e = advance();
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            std::uint32_t code = 0;
            for (int i = 0; i < 4; ++i) {
              if (eof()) fail_here("unterminated \\u escape");
              const char h = advance();
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<std::uint32_t>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<std::uint32_t>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<std::uint32_t>(h - 'A' + 10);
              } else {
                fail_here("invalid \\u escape digit");
              }
            }
            if (code > 0x7f) {
              fail_here("non-ASCII \\u escape (scenario files are ASCII)");
            }
            out.push_back(static_cast<char>(code));
            break;
          }
          default:
            fail_here(std::string{"invalid escape '\\"} + e + "'");
        }
      } else {
        out.push_back(c);
      }
    }
  }

  void parse_object(JsonNode& node) {
    node.kind = JsonNode::Kind::kObject;
    expect('{', "to open an object");
    skip_ws();
    if (!eof() && peek() == '}') {
      advance();
      return;
    }
    for (;;) {
      skip_ws();
      const std::uint32_t key_line = line_;
      const std::uint32_t key_column = column_;
      if (eof() || peek() != '"') {
        fail_here("expected a string key");
      }
      std::string key = parse_string();
      if (node.find(key) != nullptr) {
        fail_at(key_line, key_column, "duplicate key \"" + key + "\"");
      }
      skip_ws();
      expect(':', "after an object key");
      skip_ws();
      node.members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (eof()) fail_here("unterminated object");
      if (peek() == ',') {
        advance();
        continue;
      }
      expect('}', "to close an object");
      return;
    }
  }

  void parse_array(JsonNode& node) {
    node.kind = JsonNode::Kind::kArray;
    expect('[', "to open an array");
    skip_ws();
    if (!eof() && peek() == ']') {
      advance();
      return;
    }
    for (;;) {
      skip_ws();
      node.items.push_back(parse_value());
      skip_ws();
      if (eof()) fail_here("unterminated array");
      if (peek() == ',') {
        advance();
        continue;
      }
      expect(']', "to close an array");
      return;
    }
  }

  std::string_view text_;
  std::string_view file_;
  std::size_t pos_{0};
  std::uint32_t line_{1};
  std::uint32_t column_{1};
};

}  // namespace

const JsonNode* JsonNode::find(std::string_view key) const {
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

const char* JsonNode::kind_name() const {
  switch (kind) {
    case Kind::kNull: return "null";
    case Kind::kBool: return "bool";
    case Kind::kNumber: return "number";
    case Kind::kString: return "string";
    case Kind::kArray: return "array";
    case Kind::kObject: return "object";
  }
  return "?";
}

JsonNode parse_json(std::string_view text, std::string_view file) {
  return Parser{text, file}.parse();
}

}  // namespace flattree::scenario
