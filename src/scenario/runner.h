// Scenario execution: compile a parsed Scenario against real substrate
// objects, then drive the chosen simulator through it.
//
// compile_scenario() is the second validation tier after parse_scenario():
// it builds the topology (fat-tree / flat-tree / random graph / two-stage),
// generates and merges the traffic mix (dependency indices and coflow
// groups re-based across entries), materializes the failure schedule on the
// realized graph, and constructs the conversion delay model — invoking
// FailureSchedule::validate() and ConversionDelayModel::validate() so an
// invalid embedded schedule is rejected *before* any simulator runs, never
// mid-run. All rejections throw ScenarioError with a "<file>: ..." prefix.
//
// run_scenario() executes one compiled scenario and returns a deterministic
// summary: aggregate and per-tenant-class FCT statistics, engine-specific
// counters, and one verdict per SLO assertion. Determinism contract: every
// random draw comes from seeds resolved at parse time, simulators follow
// their own byte-identical-across-threads contracts, and the summary row's
// field order is fixed — so bench_scenarios output is byte-identical for
// --threads 1/2/8 (the golden_scenarios / obs_determinism_scenarios gates).
//
// Engine pipelines (SimSpec::engine x scenario content):
//   fluid                   FluidSimulator::run
//   fluid + failures        run_with_schedule; refresh "repair" replays
//                           bench_failure_recovery's exact pipeline
//                           (baseline run, Controller::plan_repair, union
//                           graph, repaired-mode refresh) — pinned
//                           byte-identical by tests/test_scenario_diff.cc;
//                           "reroute" re-solves a PathCache per refresh;
//                           "none" is capacity-only
//   fluid + conversion      ConversionExecutor::execute[_under_storm] +
//                           run_fluid_with_conversion
//   packet                  monolithic PacketSim to the horizon
//   packet_sharded          per-Pod ShardedPacketSim (Pod-local traffic)
//   autopilot               AutopilotLoop closed loop
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "control/controller.h"
#include "core/flat_tree.h"
#include "exec/pool.h"
#include "exec/results.h"
#include "net/failures.h"
#include "net/graph.h"
#include "obs/sink.h"
#include "scenario/spec.h"
#include "topo/params.h"
#include "traffic/flow.h"

namespace flattree::scenario {

// A scenario bound to real substrate objects, ready to run.
struct CompiledScenario {
  Scenario spec;
  std::string file;

  // Device budget / positional rack & Pod layout (valid for every kind).
  ClosParams clos;
  std::uint32_t servers{0};
  std::uint32_t servers_per_rack{0};
  std::uint32_t servers_per_pod{0};

  // Merged workload, traffic entries concatenated in declaration order;
  // per-flow dependency indices and coflow groups re-based so entries never
  // collide. flow_class[i] indexes class_names (one per distinct tenant
  // class, first-use order).
  Workload flows;
  std::vector<std::uint32_t> flow_class;
  std::vector<std::string> class_names;

  // Flat kinds only: the convertible tree and the initial mode assignment.
  std::shared_ptr<const FlatTree> tree;
  ModeAssignment assignment;

  // The operating topology traffic starts on (flat kinds: the assignment's
  // realization; random kinds: the wired graph).
  std::shared_ptr<const Graph> base_graph;

  // Failure schedule in base_graph's link space, flaps expanded, validated.
  FailureSchedule failures;

  // Conversion target (spec.conversion.present) and the validated Table-3
  // delay model (from the conversion spec, or defaults with the sim
  // section's controller count).
  ModeAssignment conversion_to;
  ConversionDelayModel delay;
};

// Binds `spec` to substrate objects and re-validates everything only the
// realized topology can check. Throws ScenarioError ("<file>: ...") on any
// rejection — including "failure schedule rejected: ..." from
// FailureSchedule construction/validate() and "conversion delay model
// rejected: ..." from ConversionDelayModel::validate().
[[nodiscard]] CompiledScenario compile_scenario(
    const Scenario& spec, std::string_view file = "<scenario>");

// parse_scenario_file + compile_scenario.
[[nodiscard]] CompiledScenario compile_scenario_file(const std::string& path);

// FCT statistics over one flow population (aggregate or one tenant class).
struct ClassSummary {
  std::string name;  // "" = aggregate
  std::size_t flows{0};
  std::size_t completed{0};
  double worst_fct_s{0.0};
  double p99_fct_s{0.0};
  double p50_fct_s{0.0};
  double mean_fct_s{0.0};

  [[nodiscard]] double completed_frac() const {
    return flows == 0 ? 0.0
                      : static_cast<double>(completed) /
                            static_cast<double>(flows);
  }
};

struct SloVerdict {
  SloSpec spec;
  double value{0.0};
  bool pass{true};
};

struct ScenarioResult {
  std::string name;
  ClassSummary aggregate;
  // One per defined tenant class (class_names order); empty for engines
  // that report aggregate-only (packet_sharded, autopilot).
  std::vector<ClassSummary> classes;
  std::vector<SloVerdict> slos;
  bool slos_pass{true};
  // slos_pass == spec.expect_pass: the battery's self-check.
  bool matches_expect{true};
  // Engine-specific numeric extras in emission order (exact values, for
  // differential tests); duplicated into `row`.
  std::vector<std::pair<std::string, double>> extras;
  // The full summary as one deterministic BENCH row (fixed field order).
  exec::ResultRow row;
};

struct RunOptions {
  // Fan-out for the sharded packet engine only (null = serial shards; a
  // battery already parallel across scenarios should pass null).
  exec::ThreadPool* pool{nullptr};
  // Threaded into every simulator / controller the pipeline builds.
  obs::ObsSink sink{};
};

[[nodiscard]] ScenarioResult run_scenario(const CompiledScenario& compiled,
                                          const RunOptions& options = {});

}  // namespace flattree::scenario
