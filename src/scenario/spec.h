// The declarative scenario spec (the DSL the ROADMAP's "Scenario DSL +
// hostile workload battery" item calls for).
//
// A scenario is one JSON object describing topology, traffic mix, failure
// schedule, conversion schedule, SLO assertions and simulator choice —
// everything a hand-coded bench binary hard-codes. parse_scenario()
// validates the whole grammar with "<file>:<line>:<col>: ..." diagnostics
// (unknown keys, wrong types, out-of-range values, SLOs on undefined tenant
// classes, overlapping failure windows — never a silent default), and
// canonical_json() emits the canonical form: every field materialized with
// its resolved default, keys in grammar order, shortest-round-trip numbers,
// compact separators. parse(canonical(parse(text))) == parse(text) for
// every valid spec (tests/test_scenario_roundtrip.cc), which is what keeps
// golden summaries stable as the grammar grows.
//
// The grammar itself is documented in DESIGN.md ("Scenario DSL"); the
// execution semantics live in scenario/runner.h.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/flat_tree.h"
#include "scenario/json.h"

namespace flattree::scenario {

enum class TopologyKind : std::uint8_t {
  kFatTree,      // canonical k-ary fat-tree (flat-tree wiring, Clos mode)
  kFlatTree,     // convertible flat-tree; per-Pod or uniform mode
  kRandomGraph,  // Jellyfish-style random graph on the same device budget
  kTwoStage,     // two-stage random graph on the same device budget
};

struct TopologySpec {
  TopologyKind kind{TopologyKind::kFatTree};
  std::uint32_t k{4};                  // device budget: fat-tree arity
  std::uint32_t servers_per_edge{0};   // 0 = fat-tree default (k/2)
  static constexpr std::uint32_t kAuto = 0xffffffffu;
  std::uint32_t m{kAuto};              // 6-port converters per column
  std::uint32_t n{kAuto};              // 4-port converters per column
  std::vector<PodMode> pod_modes;      // size 1 = uniform; size k = per-Pod
  std::uint64_t wiring_seed{1};        // random_graph / two_stage only

  bool operator==(const TopologySpec&) const = default;
};

enum class TrafficPattern : std::uint8_t {
  kPermutation,  // random derangement, fixed-size flows at one instant
  kIncast,       // synchronized heavy-tailed fan-in (traffic/hostile.h)
  kClass,        // one mixed-criticality tenant class (traffic/hostile.h)
  kThreeTier,    // front-end -> cache -> storage chains (traffic/hostile.h)
  kTrace,        // Facebook-statistics trace profile (traffic/traces.h)
  kTenantChurn,  // tenant arrival/departure churn (traffic/traces.h)
};

struct TrafficSpec {
  TrafficPattern pattern{TrafficPattern::kPermutation};
  std::string tenant_class{"default"};
  std::uint64_t seed{0};  // resolved at parse: defaults to the scenario seed
  double start_s{0.0};
  // permutation
  double bytes{1e6};
  // incast
  std::uint32_t groups{8};
  std::uint32_t fanin{16};
  std::uint32_t requests{4};
  double period_s{0.25};
  bool pod_local{false};
  // incast / class (size model)
  double mean_bytes{1e6};
  double alpha{1.3};
  double max_bytes{1e9};
  // class
  double duration_s{1.0};
  double flows_per_s{500.0};
  double intra_rack_frac{0.0};
  double intra_pod_frac{0.0};
  std::int32_t hot_pod{-1};
  double hot_pod_frac{0.0};
  // three_tier
  double requests_per_s{200.0};
  double frontend_frac{0.25};
  double cache_frac{0.25};
  double request_bytes{2e4};
  double cache_reply_bytes{2e5};
  double storage_reply_bytes{2e6};
  double miss_frac{0.3};
  double think_s{0.001};
  // trace
  std::string profile;
  // tenant_churn
  double arrivals_per_s{0.5};
  double mean_lifetime_s{4.0};

  bool operator==(const TrafficSpec&) const = default;
};

enum class FailureKind : std::uint8_t {
  kCoreColumn,  // `count` consecutive core switches starting at `first`
  kLinks,       // uniform sample of `fraction` of the fabric links
  kSwitches,    // uniform sample of `fraction` of the switches of `role`
  // Control-plane chaos (require a conversion block; they degrade the
  // controllers, not the data plane, and compile into ConversionFaults
  // rather than the FailureSchedule).
  kControllerCrash,    // primary controller dies at fail_at
  kControlPartition,   // Pods [first, first+count) islanded from the root
};

struct FailureSpec {
  FailureKind kind{FailureKind::kLinks};
  double fail_at{0.0};
  double recover_at{-1.0};  // < 0 = down for the rest of the run
  std::uint32_t first{0};   // core_column
  std::uint32_t count{1};   // core_column
  double fraction{0.0};     // links / switches
  std::string role{"core"};  // switches
  std::uint32_t flaps{1};   // repeat the window this many times
  double period_s{0.0};     // flap period (required when flaps > 1)
  std::uint64_t seed{0};    // resolved at parse: defaults to scenario seed

  bool operator==(const FailureSpec&) const = default;
};

struct ConversionSpec {
  bool present{false};
  double at_s{0.0};
  std::vector<PodMode> to;  // size 1 = uniform; size k = per-Pod
  bool staged{true};
  bool stage_checkpoints{false};
  std::uint32_t ocs_partitions{4};
  double drop_probability{0.0};
  // Remaining lossy-channel knobs (ControlChannelOptions). Parsed for type
  // only; range checking is ControlChannelOptions::validate(), called once
  // at scenario compile so the rejection text has a single home.
  double channel_delay_s{0.0005};
  double channel_timeout_s{0.05};
  double channel_backoff{2.0};
  double channel_jitter{0.1};
  std::uint32_t channel_max_attempts{5};
  std::uint64_t seed{0};  // resolved at parse: defaults to scenario seed
  // Embedded ConversionDelayModel; validated by the model itself at compile
  // time (ConversionDelayModel::validate), not re-checked at parse time.
  std::uint32_t controllers{1};
  double ocs_s{0.160};
  double rule_delete_s{0.00131};
  double rule_add_s{0.00133};

  bool operator==(const ConversionSpec&) const = default;
};

enum class SloMetric : std::uint8_t {
  kWorstFct,       // worst_fct_s
  kP99Fct,         // p99_fct_s
  kP50Fct,         // p50_fct_s
  kMeanFct,        // mean_fct_s
  kCompletedFrac,  // completed_frac
};

struct SloSpec {
  std::string tenant_class;  // "" = every flow of the scenario
  SloMetric metric{SloMetric::kP99Fct};
  bool has_max{false};
  bool has_min{false};
  double max_value{0.0};
  double min_value{0.0};

  bool operator==(const SloSpec&) const = default;
};

enum class Engine : std::uint8_t {
  kFluid,          // flow-level fluid simulator (failures + conversions)
  kPacket,         // monolithic packet simulator (plain runs)
  kPacketSharded,  // per-Pod sharded packet simulator (Pod-local traffic)
  kAutopilot,      // closed-loop autopilot over the fluid simulator
};

enum class RefreshMode : std::uint8_t {
  kRepair,   // Controller::plan_repair, bench_failure_recovery's pipeline
  kReroute,  // fresh PathCache on the degraded graph at every refresh
  kNone,     // capacity changes only, no rerouting
};

struct SimSpec {
  Engine engine{Engine::kFluid};
  double max_time_s{1e6};    // fluid horizon / packet horizon / loop length
  std::uint32_t k_paths{8};  // subflow paths per pair
  RefreshMode refresh{RefreshMode::kRepair};  // default kReroute off-flat
  double repair_lag_s{-1.0};  // < 0 = auto (plan.total_s() / 0.1)
  std::uint32_t controllers{1};  // repair pricing divisor
  bool count_rules{false};
  double epoch_s{1.0};  // autopilot decision cadence

  bool operator==(const SimSpec&) const = default;
};

struct Scenario {
  std::string name;
  std::uint64_t seed{1};
  bool expect_pass{true};  // "expect": does the battery expect SLOs to hold?
  TopologySpec topology;
  std::vector<TrafficSpec> traffic;
  std::vector<FailureSpec> failures;
  ConversionSpec conversion;
  std::vector<SloSpec> slos;
  SimSpec sim;

  bool operator==(const Scenario&) const = default;
};

// Full grammar validation over a JSON text. Throws ScenarioError with a
// "<file>:<line>:<col>: ..." diagnostic on the first violation.
[[nodiscard]] Scenario parse_scenario(std::string_view text,
                                      std::string_view file = "<scenario>");

// parse_scenario over a file's contents. Throws ScenarioError (with the
// path in the message) when the file cannot be read.
[[nodiscard]] Scenario parse_scenario_file(const std::string& path);

// The canonical serialization (see the header comment). Parsing it back
// yields a Scenario that compares equal to the input.
[[nodiscard]] std::string canonical_json(const Scenario& scenario);

// Name <-> enum helpers shared with the runner/bench layers.
[[nodiscard]] const char* to_string(TopologyKind kind);
[[nodiscard]] const char* to_string(TrafficPattern pattern);
[[nodiscard]] const char* to_string(FailureKind kind);
[[nodiscard]] const char* to_string(SloMetric metric);
[[nodiscard]] const char* to_string(Engine engine);
[[nodiscard]] const char* to_string(RefreshMode mode);

}  // namespace flattree::scenario
