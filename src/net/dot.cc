#include "net/dot.h"

#include <map>
#include <ostream>
#include <sstream>
#include <vector>

namespace flattree {
namespace {

const char* node_style(NodeRole role) {
  switch (role) {
    case NodeRole::kServer:
      return "shape=circle, width=0.2, fixedsize=true, label=\"\", "
             "style=filled, fillcolor=white";
    case NodeRole::kEdge:
      return "shape=box, style=filled, fillcolor=\"#cfe8ff\"";
    case NodeRole::kAgg:
      return "shape=box, style=filled, fillcolor=\"#9ec9f5\"";
    case NodeRole::kCore:
      return "shape=box, style=filled, fillcolor=\"#5b9bd5\"";
    case NodeRole::kAgg2:
      return "shape=box, style=filled, fillcolor=\"#2e75b6\"";
    case NodeRole::kCore2:
      return "shape=box, style=filled, fillcolor=\"#1f4e79\"";
  }
  return "shape=box";
}

}  // namespace

void write_dot(std::ostream& out, const Graph& graph,
               const DotOptions& options) {
  out << "graph " << options.graph_name << " {\n"
      << "  rankdir=BT;\n  node [fontsize=9];\n";

  // Nodes, grouped into Pod clusters when requested.
  std::map<std::uint32_t, std::vector<NodeId>> by_pod;  // pod -> nodes
  std::vector<NodeId> podless;
  for (std::uint32_t i = 0; i < graph.node_count(); ++i) {
    const NodeId id{i};
    const Node& n = graph.node(id);
    if (n.role == NodeRole::kServer && !options.include_servers) continue;
    if (options.cluster_pods && n.pod.valid()) {
      by_pod[n.pod.value()].push_back(id);
    } else {
      podless.push_back(id);
    }
  }

  const auto emit_node = [&](NodeId id, const char* indent) {
    const Node& n = graph.node(id);
    out << indent << "n" << id.value() << " [" << node_style(n.role);
    if (n.role != NodeRole::kServer) {
      out << ", label=\"" << to_string(n.role) << n.index_in_role << "\"";
    }
    out << "];\n";
  };

  for (const auto& [pod, nodes] : by_pod) {
    out << "  subgraph cluster_pod" << pod << " {\n"
        << "    label=\"pod " << pod << "\";\n";
    for (NodeId id : nodes) emit_node(id, "    ");
    out << "  }\n";
  }
  for (NodeId id : podless) emit_node(id, "  ");

  // Links (skip server links when servers are hidden).
  for (std::uint32_t i = 0; i < graph.link_count(); ++i) {
    const Link& l = graph.link(LinkId{i});
    if (!options.include_servers &&
        (graph.node(l.a).role == NodeRole::kServer ||
         graph.node(l.b).role == NodeRole::kServer)) {
      continue;
    }
    out << "  n" << l.a.value() << " -- n" << l.b.value() << ";\n";
  }
  out << "}\n";
}

std::string to_dot(const Graph& graph, const DotOptions& options) {
  std::ostringstream out;
  write_dot(out, graph, options);
  return out.str();
}

}  // namespace flattree
