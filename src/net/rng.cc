#include "net/rng.h"

#include <cmath>
#include <stdexcept>

namespace flattree {

double Rng::next_exponential(double rate) {
  if (rate <= 0) throw std::invalid_argument("exponential rate must be > 0");
  // -log(1-u) with u in [0,1) keeps the argument strictly positive.
  return -std::log1p(-next_double()) / rate;
}

double Rng::next_pareto(double alpha, double xm) {
  if (alpha <= 0 || xm <= 0) {
    throw std::invalid_argument("pareto parameters must be > 0");
  }
  const double u = next_double();
  return xm / std::pow(1.0 - u, 1.0 / alpha);
}

}  // namespace flattree
