#include "net/control_rtt.h"

#include <algorithm>
#include <stdexcept>

namespace flattree {

ControlRttModel control_rtts(const Graph& graph, NodeId site, double per_hop_s,
                             double floor_s) {
  if (!site.valid() || site.index() >= graph.node_count()) {
    throw std::invalid_argument("control_rtts: site must name a graph node");
  }
  // Negated conjunctions so NaN is rejected too.
  if (!(per_hop_s >= 0.0)) {
    throw std::invalid_argument("control_rtts: per_hop_s must be >= 0");
  }
  if (!(floor_s >= 0.0)) {
    throw std::invalid_argument("control_rtts: floor_s must be >= 0");
  }
  const std::vector<std::uint32_t> dist = graph.bfs_distances(site);
  std::uint32_t worst = 0;
  for (std::uint32_t d : dist) {
    if (d != Graph::kUnreachable) worst = std::max(worst, d);
  }
  const std::uint32_t detour_hops = worst + 2;
  ControlRttModel model;
  model.site = site;
  model.one_way_s.resize(dist.size());
  for (std::size_t i = 0; i < dist.size(); ++i) {
    const std::uint32_t hops =
        dist[i] == Graph::kUnreachable ? detour_hops : dist[i];
    model.one_way_s[i] = floor_s + static_cast<double>(hops) * per_hop_s;
  }
  return model;
}

}  // namespace flattree
