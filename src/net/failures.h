// Failure modeling: static graph surgery and live fail/recover schedules.
//
// The paper asserts (§4.2.1, footnote 2) that flat-tree, approximating
// random graph networks, should inherit their graceful throughput
// degradation under failure, and leaves the evaluation to future work. This
// module provides the substrate in two tiers:
//
//   * Static: derive a degraded copy of a network with a chosen set (or
//     random fraction) of links and/or switches removed, keeping node ids
//     stable so workloads and routing carry over unchanged.
//   * Dynamic: a FailureSchedule of time-stamped fail/recover events that
//     the simulators consume mid-run (FluidSimulator::run_with_schedule,
//     PacketSim::apply_failure / run_with_schedule) and the controller
//     repairs around (Controller::plan_repair).
//
// Failed switches keep their node id and their server access links — the
// servers stay physically cabled to a dead box — but lose every
// switch-switch link, so traffic through them (and to their servers) dies
// exactly as it does in a real fabric.
#pragma once

#include <cstdint>
#include <vector>

#include "net/graph.h"
#include "net/rng.h"

namespace flattree {

// A set of simultaneously failed elements. Links and switches compose: a
// correlated event (a dead core column, a cut cable bundle) is one set.
struct FailureSet {
  std::vector<LinkId> links;
  std::vector<NodeId> switches;

  [[nodiscard]] bool empty() const { return links.empty() && switches.empty(); }
  [[nodiscard]] std::size_t size() const {
    return links.size() + switches.size();
  }
  void merge(const FailureSet& other);
};

// One fail or recover event. Events with equal timestamps apply in
// insertion order. Both simulators drain every event due at a time
// boundary before acting on the resulting state (FluidSimulator applies
// the whole batch before reallocating rates; PacketSim's schedule driver
// degrades against active_at(t), which folds the batch), so a fail and a
// recover of the same element at the identical timestamp net out: the
// element is never observed failed. Pinned by tests/test_failures.cc
// (SameTimestampFailRecover*).
struct FailureEvent {
  double time_s{0.0};
  bool recover{false};  // false = elements fail, true = elements recover
  FailureSet elements;
};

// A time-ordered script of fail/recover events, the unit both simulators
// and the controller consume. Construction is validated: every entity's
// event sequence must alternate fail / recover in time order (ties in
// insertion order), so a fail of an already-failed element, a recover of
// an element that was never failed (or has already recovered), and an
// out-of-order insertion that would produce either are all rejected with
// std::invalid_argument at fail_at()/recover_at() time. A consumer can
// therefore trust any schedule it receives; validate() re-checks the whole
// script (sortedness + per-entity alternation) for schedules that crossed
// a trust boundary.
class FailureSchedule {
 public:
  FailureSchedule& fail_at(double time_s, FailureSet elements);
  FailureSchedule& recover_at(double time_s, FailureSet elements);

  [[nodiscard]] const std::vector<FailureEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  // Cumulative failed set after applying every event with time <= time_s.
  [[nodiscard]] FailureSet active_at(double time_s) const;

  // Full-script re-check of the construction invariants: events sorted by
  // time, and per entity a strict fail/recover alternation starting with a
  // fail. Throws std::invalid_argument on the first violation. A schedule
  // built through fail_at()/recover_at() always passes.
  void validate() const;

 private:
  void insert(FailureEvent event);

  std::vector<FailureEvent> events_;  // sorted by time, stable on ties
};

// A copy of `graph` without the given links. Node ids (and therefore server
// identities) are preserved; link ids are renumbered. Throws if an id is
// out of range.
[[nodiscard]] Graph remove_links(const Graph& graph,
                                 const std::vector<LinkId>& failed);

// A copy of `graph` degraded by `failures`: failed links are removed, and
// failed switches lose every switch-switch link (their server access links
// survive, leaving those servers attached but unreachable — see the header
// comment). Node ids are preserved; link ids are renumbered. Throws
// std::invalid_argument on out-of-range ids or if a listed switch is a
// server.
[[nodiscard]] Graph degrade(const Graph& graph, const FailureSet& failures);

// degrade() for a graph whose link numbering differs from the one the
// failure set was expressed against (e.g. a converter-rewired repair
// realization): link ids are resolved to node pairs in `reference`, and
// every link of `graph` between such a pair is removed — node ids are the
// stable currency across realizations; link ids are not. Switch failures
// apply as in degrade().
[[nodiscard]] Graph degrade_mapped(const Graph& graph, const Graph& reference,
                                   const FailureSet& failures);

// Uniformly samples `fraction` of the switch-switch links (server access
// links never fail — the paper's failure discussions concern the fabric).
[[nodiscard]] std::vector<LinkId> sample_fabric_failures(const Graph& graph,
                                                         double fraction,
                                                         Rng& rng);

// Uniformly samples `fraction` of the switches with the given role.
[[nodiscard]] std::vector<NodeId> sample_switch_failures(const Graph& graph,
                                                         NodeRole role,
                                                         double fraction,
                                                         Rng& rng);

// Correlated failure: `count` consecutive core switches starting at core
// index `first_core` (by index_in_role, wrapping modulo the core count).
// With the flat-tree Pod-core wiring (§3.2), column j's connectors land on
// the consecutive core group [j*g, (j+1)*g), so first_core = j*g and
// count = g fails a whole core column. Throws if the graph has no cores or
// count exceeds the core count.
[[nodiscard]] FailureSet core_column_failure(const Graph& graph,
                                             std::uint32_t first_core,
                                             std::uint32_t count);

// Link ids of `graph` that have no counterpart in `other`: for each node
// pair, `graph`'s links beyond `other`'s count between that pair (parallel
// links match up count-aware; which ids of an over-full pair are reported
// is deterministic — the highest-numbered ones). Both graphs must share
// node ids. This is the link-level diff between two realizations of the
// same flat-tree, the currency of staged conversion execution.
[[nodiscard]] std::vector<LinkId> links_not_in(const Graph& graph,
                                               const Graph& other);

// `base` plus every link of `extra` it does not already contain
// (count-aware for parallel links). Node ids must be shared. Simulations
// spanning a conversion or a converter-rewire repair run on the union of
// the realizations involved: links absent from the current operating
// topology are failed (zero capacity) or simply unused, and become live
// the moment a schedule event or refreshed route needs them.
[[nodiscard]] Graph graph_union(const Graph& base, const Graph& extra);

// True if every server can still reach every other server.
[[nodiscard]] bool servers_connected(const Graph& graph);

}  // namespace flattree
