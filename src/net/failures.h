// Link-failure modeling.
//
// The paper asserts (§4.2.1, footnote 2) that flat-tree, approximating
// random graph networks, should inherit their graceful throughput
// degradation under failure, and leaves the evaluation to future work. This
// module provides the substrate: derive a degraded copy of a network with a
// chosen set (or random fraction) of switch-switch links removed, keeping
// node ids stable so workloads and routing carry over unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "net/graph.h"
#include "net/rng.h"

namespace flattree {

// A copy of `graph` without the given links. Node ids (and therefore server
// identities) are preserved; link ids are renumbered. Throws if an id is
// out of range.
[[nodiscard]] Graph remove_links(const Graph& graph,
                                 const std::vector<LinkId>& failed);

// Uniformly samples `fraction` of the switch-switch links (server access
// links never fail — the paper's failure discussions concern the fabric).
[[nodiscard]] std::vector<LinkId> sample_fabric_failures(const Graph& graph,
                                                         double fraction,
                                                         Rng& rng);

// True if every server can still reach every other server.
[[nodiscard]] bool servers_connected(const Graph& graph);

}  // namespace flattree
