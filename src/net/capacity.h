// Logical (merged-parallel-link) view of a Graph for bandwidth allocation.
//
// Routing computes paths as node sequences; for capacity accounting the
// parallel physical links between a node pair act as one logical pipe with
// summed capacity. LogicalTopology numbers every adjacent unordered node
// pair with an edge index and exposes per-direction capacities, which the LP
// formulations and the fluid simulator use as constraint rows.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/graph.h"

namespace flattree {

class LogicalTopology {
 public:
  explicit LogicalTopology(const Graph& graph);

  [[nodiscard]] std::size_t edge_count() const { return capacity_.size(); }
  [[nodiscard]] std::size_t directed_count() const {
    return 2 * capacity_.size();
  }

  // Undirected edge index between adjacent nodes, if any.
  [[nodiscard]] std::optional<std::uint32_t> edge_between(NodeId a,
                                                          NodeId b) const;

  // Directed edge index for the hop from -> to; throws std::logic_error if
  // the nodes are not adjacent. Directed index = 2*edge + (from < to ? 0 : 1).
  [[nodiscard]] std::uint32_t directed_index(NodeId from, NodeId to) const;

  // Capacity of one direction of a logical edge (sum of parallel links).
  [[nodiscard]] double capacity(std::uint32_t directed) const {
    return capacity_[directed / 2];
  }

  // Directed edge indices traversed by a node path (size() - 1 entries).
  [[nodiscard]] std::vector<std::uint32_t> path_edges(
      std::span<const NodeId> path) const;

 private:
  static std::uint64_t key(NodeId a, NodeId b) {
    const auto lo = std::min(a.value(), b.value());
    const auto hi = std::max(a.value(), b.value());
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  }

  std::unordered_map<std::uint64_t, std::uint32_t> edge_index_;
  std::vector<double> capacity_;  // per undirected edge, per direction
};

}  // namespace flattree
