// Deterministic pseudo-random number generation.
//
// All stochastic components in the library (random-graph wiring, traffic
// generation, ECMP hashing) derive their randomness from an explicit 64-bit
// seed through this generator, so every experiment is reproducible
// bit-for-bit across runs and platforms. The core generator is
// xoshiro256** seeded via splitmix64, both public-domain algorithms.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace flattree {

// splitmix64 step; also useful as a standalone integer mixer/hash.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Stateless mix of up to three words; used for hash-based (ECMP) decisions.
constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b = 0,
                              std::uint64_t c = 0) {
  std::uint64_t s = a * 0x9e3779b97f4a7c15ULL + b;
  std::uint64_t h = splitmix64(s);
  s = h + c;
  return splitmix64(s);
}

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0. Uses rejection
  // sampling (Lemire-style threshold) to avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound) {
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Exponential variate with the given rate (mean 1/rate).
  double next_exponential(double rate);

  // Pareto variate with shape alpha and minimum xm (heavy-tailed sizes).
  double next_pareto(double alpha, double xm);

  // Fork a statistically independent child generator; `stream` selects the
  // substream so that parallel components don't share sequences.
  Rng fork(std::uint64_t stream) const {
    return Rng{mix64(state_[0] ^ state_[3], 0x666f726bULL, stream)};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

// Fisher-Yates shuffle with the library Rng (std::shuffle's result is
// implementation-defined; this one is stable across platforms).
template <typename Vec>
void shuffle(Vec& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = rng.next_below(i);
    using std::swap;
    swap(v[i - 1], v[j]);
  }
}

}  // namespace flattree
