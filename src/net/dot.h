// Graphviz DOT export for topology inspection and documentation.
//
// Renders a realized network as an undirected DOT graph with role-based
// styling (servers as small circles, edge/agg/core switches as boxes of
// increasing shade) and Pods as clusters, so `dot -Tsvg` produces a figure
// directly comparable to the paper's Figure 2.
#pragma once

#include <iosfwd>
#include <string>

#include "net/graph.h"

namespace flattree {

struct DotOptions {
  bool cluster_pods{true};    // group nodes of a Pod into a subgraph
  bool include_servers{true};
  std::string graph_name{"flattree"};
};

// Writes the graph in DOT syntax to `out`.
void write_dot(std::ostream& out, const Graph& graph,
               const DotOptions& options = DotOptions{});

// Convenience: DOT as a string.
[[nodiscard]] std::string to_dot(const Graph& graph,
                                 const DotOptions& options = DotOptions{});

}  // namespace flattree
