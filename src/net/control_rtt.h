// Topology-aware control-plane latency model.
//
// The lossy control channel (ControlChannelOptions) historically charged one
// uniform one-way delay for every controller <-> device message. A real
// control network rides the same fabric it programs: a controller homed on a
// core switch reaches a far Pod's edge switch across more hops than its own
// rack. This module derives per-switch one-way delays from hop distance on
// the realized graph — the control topology IS the data topology (in-band
// control), which is exactly the regime where a data-plane partition becomes
// a control-plane partition and the hierarchy in src/control/hierarchy.h
// earns its keep.
//
// The model is a pure function of (graph, site, per_hop_s, floor_s), so two
// controllers computing it independently agree bit-for-bit — the property
// the standby-promotion and rejoin-reconciliation paths rely on.
#pragma once

#include <vector>

#include "net/graph.h"

namespace flattree {

// Per-node one-way control latency from one controller site.
struct ControlRttModel {
  NodeId site{};                   // the controller's attachment switch
  std::vector<double> one_way_s;   // indexed by node id; servers included

  // The one-way delay toward `n`, or `fallback` when the node is out of
  // range (a realization with more nodes than the model was built from).
  [[nodiscard]] double one_way(NodeId n, double fallback) const {
    return n.valid() && n.index() < one_way_s.size() ? one_way_s[n.index()]
                                                     : fallback;
  }
};

// Builds the model by BFS from `site` on `graph`: one_way_s[n] =
// floor_s + hops(site, n) * per_hop_s. The site itself costs floor_s (the
// controller still traverses its own switch's control agent). Nodes the BFS
// cannot reach — a switch islanded by converter circuits mid-conversion —
// are charged the graph's worst finite distance plus two hops: the message
// would detour over whatever out-of-band path exists, and a finite (if
// pessimistic) delay keeps the channel model's timeout math meaningful
// instead of dividing by infinity. Throws std::invalid_argument on an
// invalid site or negative/NaN timings.
[[nodiscard]] ControlRttModel control_rtts(const Graph& graph, NodeId site,
                                           double per_hop_s,
                                           double floor_s = 0.0);

}  // namespace flattree
