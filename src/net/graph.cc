#include "net/graph.h"

#include <deque>
#include <stdexcept>

namespace flattree {

const char* to_string(NodeRole role) {
  switch (role) {
    case NodeRole::kServer: return "server";
    case NodeRole::kEdge: return "edge";
    case NodeRole::kAgg: return "agg";
    case NodeRole::kCore: return "core";
    case NodeRole::kAgg2: return "agg2";
    case NodeRole::kCore2: return "core2";
  }
  return "?";
}

NodeId Graph::add_node(NodeRole role, PodId pod) {
  const NodeId id{static_cast<std::uint32_t>(nodes_.size())};
  const std::uint32_t ordinal = role_counts_[static_cast<std::size_t>(role)]++;
  nodes_.push_back(Node{role, pod, ordinal});
  adjacency_.emplace_back();
  return id;
}

LinkId Graph::add_link(NodeId a, NodeId b, double capacity_bps) {
  if (a.index() >= nodes_.size() || b.index() >= nodes_.size()) {
    throw std::invalid_argument("add_link: node id out of range");
  }
  if (a == b) throw std::invalid_argument("add_link: self-loop");
  if (capacity_bps <= 0) {
    throw std::invalid_argument("add_link: capacity must be positive");
  }
  const LinkId id{static_cast<std::uint32_t>(links_.size())};
  links_.push_back(Link{a, b, capacity_bps});
  adjacency_[a.index()].push_back(Adjacency{id, b});
  adjacency_[b.index()].push_back(Adjacency{id, a});
  return id;
}

const Node& Graph::node(NodeId id) const {
  if (id.index() >= nodes_.size()) {
    throw std::out_of_range("Graph::node: bad id");
  }
  return nodes_[id.index()];
}

const Link& Graph::link(LinkId id) const {
  if (id.index() >= links_.size()) {
    throw std::out_of_range("Graph::link: bad id");
  }
  return links_[id.index()];
}

std::span<const Adjacency> Graph::neighbors(NodeId id) const {
  if (id.index() >= nodes_.size()) {
    throw std::out_of_range("Graph::neighbors: bad id");
  }
  return adjacency_[id.index()];
}

std::size_t Graph::degree(NodeId id) const { return neighbors(id).size(); }

NodeId Graph::peer(LinkId link_id, NodeId from) const {
  const Link& l = link(link_id);
  if (l.a == from) return l.b;
  if (l.b == from) return l.a;
  throw std::logic_error("Graph::peer: node is not an endpoint of link");
}

bool Graph::adjacent(NodeId a, NodeId b) const {
  for (const Adjacency& adj : neighbors(a)) {
    if (adj.peer == b) return true;
  }
  return false;
}

std::vector<NodeId> Graph::nodes_with_role(NodeRole role) const {
  std::vector<NodeId> result;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].role == role) result.emplace_back(static_cast<std::uint32_t>(i));
  }
  return result;
}

std::size_t Graph::count_role(NodeRole role) const {
  return role_counts_[static_cast<std::size_t>(role)];
}

std::vector<NodeId> Graph::switches() const {
  std::vector<NodeId> result;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (is_switch(nodes_[i].role)) {
      result.emplace_back(static_cast<std::uint32_t>(i));
    }
  }
  return result;
}

NodeId Graph::attachment_switch(NodeId server) const {
  if (node(server).role != NodeRole::kServer) {
    throw std::logic_error("attachment_switch: node is not a server");
  }
  const auto adj = neighbors(server);
  if (adj.size() != 1) {
    throw std::logic_error("attachment_switch: server degree != 1");
  }
  return adj.front().peer;
}

std::vector<NodeId> Graph::attached_servers(NodeId sw) const {
  std::vector<NodeId> result;
  for (const Adjacency& adj : neighbors(sw)) {
    if (node(adj.peer).role == NodeRole::kServer) result.push_back(adj.peer);
  }
  return result;
}

std::vector<std::uint32_t> Graph::bfs_distances(NodeId src) const {
  std::vector<std::uint32_t> dist(nodes_.size(), kUnreachable);
  if (src.index() >= nodes_.size()) {
    throw std::out_of_range("bfs_distances: bad source");
  }
  std::deque<NodeId> queue{src};
  dist[src.index()] = 0;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    // Servers are leaves; traffic never transits them.
    if (u != src && nodes_[u.index()].role == NodeRole::kServer) continue;
    for (const Adjacency& adj : adjacency_[u.index()]) {
      if (dist[adj.peer.index()] == kUnreachable) {
        dist[adj.peer.index()] = dist[u.index()] + 1;
        queue.push_back(adj.peer);
      }
    }
  }
  return dist;
}

bool Graph::connected() const {
  if (nodes_.empty()) return true;
  // Start from a switch if one exists, so server-leaf pruning cannot hide
  // reachable nodes.
  NodeId start{0};
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (is_switch(nodes_[i].role)) {
      start = NodeId{static_cast<std::uint32_t>(i)};
      break;
    }
  }
  const auto dist = bfs_distances(start);
  for (std::uint32_t d : dist) {
    if (d == kUnreachable) return false;
  }
  return true;
}

std::string Graph::label(NodeId id) const {
  const Node& n = node(id);
  std::string s = to_string(n.role);
  s += std::to_string(n.index_in_role);
  if (n.pod.valid()) {
    s += "(pod" + std::to_string(n.pod.value()) + ")";
  }
  return s;
}

}  // namespace flattree
