// Strong identifier types for network entities.
//
// Every entity class (node, link, pod, flow, ...) gets its own wrapper around
// a 32-bit index so that, e.g., passing a LinkId where a NodeId is expected is
// a compile error. Ids are cheap to copy and hashable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace flattree {

template <typename Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(std::uint32_t value) : value_{value} {}

  // Numeric value; also usable directly as a vector index.
  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr std::size_t index() const { return value_; }

  [[nodiscard]] constexpr bool valid() const {
    return value_ != std::numeric_limits<std::uint32_t>::max();
  }

  static constexpr Id invalid() { return Id{}; }

  friend constexpr bool operator==(Id a, Id b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) { return a.value_ < b.value_; }
  friend constexpr bool operator>(Id a, Id b) { return a.value_ > b.value_; }
  friend constexpr bool operator<=(Id a, Id b) { return a.value_ <= b.value_; }
  friend constexpr bool operator>=(Id a, Id b) { return a.value_ >= b.value_; }

 private:
  std::uint32_t value_{std::numeric_limits<std::uint32_t>::max()};
};

using NodeId = Id<struct NodeIdTag>;
using LinkId = Id<struct LinkIdTag>;
using PodId = Id<struct PodIdTag>;
using FlowId = Id<struct FlowIdTag>;
using ConverterId = Id<struct ConverterIdTag>;

}  // namespace flattree

namespace std {
template <typename Tag>
struct hash<flattree::Id<Tag>> {
  size_t operator()(flattree::Id<Tag> id) const noexcept {
    return std::hash<uint32_t>{}(id.value());
  }
};
}  // namespace std
