// Graph-level statistics used throughout the evaluation: average path
// lengths (the (m, n) profiling metric of §3.4 and the wiring-pattern
// ablation of §3.2), diameter, and structural audits.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/graph.h"

namespace flattree {

struct PathLengthStats {
  double avg_switch_pair_hops{0.0};   // mean over ordered switch pairs
  double avg_server_pair_hops{0.0};   // mean over ordered server pairs
  std::uint32_t diameter{0};          // max finite switch-pair distance
  // Histogram of switch-pair hop distances (distance -> ordered-pair count).
  std::map<std::uint32_t, std::uint64_t> switch_hop_histogram;
};

// All-pairs BFS over the switch subgraph. Server-pair distance is the
// attachment-switch distance plus the two server-edge hops.
[[nodiscard]] PathLengthStats compute_path_length_stats(const Graph& graph);

// Number of servers attached to each switch of the given role, in
// index_in_role order. Used to verify wiring Property 1 (§3.2): servers are
// distributed uniformly across the core switches.
[[nodiscard]] std::vector<std::size_t> servers_per_switch(const Graph& graph,
                                                          NodeRole role);

// Per-switch count of links toward nodes of `peer_role`, in index_in_role
// order over switches of `role`. Used to verify wiring Property 2 (§3.2):
// core switches carry an equal number of links of each type.
[[nodiscard]] std::vector<std::size_t> links_by_peer_role(const Graph& graph,
                                                          NodeRole role,
                                                          NodeRole peer_role);

// Total bisection-ish capacity proxy: the sum of capacities of all links with
// at least one core-switch endpoint (the paper's "network core bandwidth").
[[nodiscard]] double core_link_capacity(const Graph& graph);

}  // namespace flattree
