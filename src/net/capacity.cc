#include "net/capacity.h"

#include <stdexcept>

namespace flattree {

LogicalTopology::LogicalTopology(const Graph& graph) {
  for (std::size_t i = 0; i < graph.link_count(); ++i) {
    const Link& l = graph.link(LinkId{static_cast<std::uint32_t>(i)});
    const std::uint64_t k = key(l.a, l.b);
    auto [it, inserted] =
        edge_index_.try_emplace(k, static_cast<std::uint32_t>(capacity_.size()));
    if (inserted) {
      capacity_.push_back(l.capacity_bps);
    } else {
      capacity_[it->second] += l.capacity_bps;
    }
  }
}

std::optional<std::uint32_t> LogicalTopology::edge_between(NodeId a,
                                                           NodeId b) const {
  const auto it = edge_index_.find(key(a, b));
  if (it == edge_index_.end()) return std::nullopt;
  return it->second;
}

std::uint32_t LogicalTopology::directed_index(NodeId from, NodeId to) const {
  const auto edge = edge_between(from, to);
  if (!edge) {
    throw std::logic_error("directed_index: nodes not adjacent");
  }
  return 2 * *edge + (from.value() < to.value() ? 0u : 1u);
}

std::vector<std::uint32_t> LogicalTopology::path_edges(
    std::span<const NodeId> path) const {
  std::vector<std::uint32_t> edges;
  if (path.size() < 2) return edges;
  edges.reserve(path.size() - 1);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    edges.push_back(directed_index(path[i], path[i + 1]));
  }
  return edges;
}

}  // namespace flattree
