#include "net/stats.h"

#include <stdexcept>

namespace flattree {

PathLengthStats compute_path_length_stats(const Graph& graph) {
  PathLengthStats stats;
  const auto switches = graph.switches();
  if (switches.size() < 2) return stats;

  // Servers attached per switch, so server-pair averages can be computed
  // from one BFS per switch instead of one per server.
  std::vector<std::uint64_t> server_count(graph.node_count(), 0);
  std::uint64_t total_servers = 0;
  for (NodeId server : graph.servers()) {
    ++server_count[graph.attachment_switch(server).index()];
    ++total_servers;
  }

  long double switch_hop_sum = 0;
  std::uint64_t switch_pairs = 0;
  long double server_hop_sum = 0;
  std::uint64_t server_pairs = 0;

  for (NodeId src : switches) {
    const auto dist = graph.bfs_distances(src);
    const std::uint64_t src_servers = server_count[src.index()];
    for (NodeId dst : switches) {
      if (dst == src) {
        // Distinct servers under the same switch are 2 hops apart.
        const std::uint64_t pairs = src_servers * (src_servers - 1);
        server_hop_sum += 2.0L * static_cast<long double>(pairs);
        server_pairs += pairs;
        continue;
      }
      const std::uint32_t d = dist[dst.index()];
      if (d == Graph::kUnreachable) {
        throw std::logic_error("path stats on a disconnected graph");
      }
      switch_hop_sum += d;
      ++switch_pairs;
      if (d > stats.diameter) stats.diameter = d;
      ++stats.switch_hop_histogram[d];

      const std::uint64_t pairs = src_servers * server_count[dst.index()];
      server_hop_sum += static_cast<long double>(d + 2) * pairs;
      server_pairs += pairs;
    }
  }

  stats.avg_switch_pair_hops =
      static_cast<double>(switch_hop_sum / static_cast<long double>(switch_pairs));
  if (server_pairs > 0) {
    stats.avg_server_pair_hops =
        static_cast<double>(server_hop_sum / static_cast<long double>(server_pairs));
  }
  return stats;
}

std::vector<std::size_t> servers_per_switch(const Graph& graph, NodeRole role) {
  std::vector<std::size_t> counts(graph.count_role(role), 0);
  for (NodeId sw : graph.nodes_with_role(role)) {
    counts[graph.node(sw).index_in_role] = graph.attached_servers(sw).size();
  }
  return counts;
}

std::vector<std::size_t> links_by_peer_role(const Graph& graph, NodeRole role,
                                            NodeRole peer_role) {
  std::vector<std::size_t> counts(graph.count_role(role), 0);
  for (NodeId sw : graph.nodes_with_role(role)) {
    std::size_t n = 0;
    for (const Adjacency& adj : graph.neighbors(sw)) {
      if (graph.node(adj.peer).role == peer_role) ++n;
    }
    counts[graph.node(sw).index_in_role] = n;
  }
  return counts;
}

double core_link_capacity(const Graph& graph) {
  double total = 0;
  for (std::size_t i = 0; i < graph.link_count(); ++i) {
    const Link& l = graph.link(LinkId{static_cast<std::uint32_t>(i)});
    if (graph.node(l.a).role == NodeRole::kCore ||
        graph.node(l.b).role == NodeRole::kCore) {
      total += l.capacity_bps;
    }
  }
  return total;
}

}  // namespace flattree
