// Network graph substrate.
//
// A Graph is an undirected multigraph of nodes (servers and switches) and
// capacitated links. It is the common representation every other module works
// on: topology builders produce Graphs, the flat-tree core realizes each
// operation mode as a Graph, routing computes paths on Graphs, and the
// simulators allocate link bandwidth on Graphs.
//
// Capacity is per direction: a link with capacity_bps = 10e9 carries 10 Gb/s
// each way independently, matching full-duplex Ethernet.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/ids.h"

namespace flattree {

enum class NodeRole : std::uint8_t {
  kServer,
  kEdge,  // top-of-rack switch
  kAgg,   // aggregation switch
  kCore,  // core (spine) switch; in a multi-stage flat-tree, an upper-Pod
          // "edge" switch (§2.2: lower Pods see upper-Pod edges as cores)
  kAgg2,  // multi-stage only: upper-Pod aggregation switch
  kCore2, // multi-stage only: top-level core switch
};

[[nodiscard]] const char* to_string(NodeRole role);
[[nodiscard]] inline bool is_switch(NodeRole role) {
  return role != NodeRole::kServer;
}

struct Node {
  NodeRole role{NodeRole::kServer};
  PodId pod{};                       // invalid for core switches
  std::uint32_t index_in_role{0};    // global ordinal among nodes of this role
};

struct Link {
  NodeId a{};
  NodeId b{};
  double capacity_bps{0.0};
};

// One adjacency entry: the link and the node on its far end.
struct Adjacency {
  LinkId link{};
  NodeId peer{};
};

class Graph {
 public:
  Graph() = default;

  // -- construction ---------------------------------------------------------

  NodeId add_node(NodeRole role, PodId pod = PodId::invalid());

  // Adds an undirected link. Self-loops are rejected; parallel links are
  // allowed (Clos layouts legitimately use multi-links between switch pairs).
  LinkId add_link(NodeId a, NodeId b, double capacity_bps);

  // -- accessors ------------------------------------------------------------

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] const Link& link(LinkId id) const;

  [[nodiscard]] std::span<const Adjacency> neighbors(NodeId id) const;
  [[nodiscard]] std::size_t degree(NodeId id) const;

  // The node on the other end of `link` from `from`.
  [[nodiscard]] NodeId peer(LinkId link, NodeId from) const;

  // True if at least one link connects a and b (O(degree(a))).
  [[nodiscard]] bool adjacent(NodeId a, NodeId b) const;

  [[nodiscard]] std::vector<NodeId> nodes_with_role(NodeRole role) const;
  [[nodiscard]] std::size_t count_role(NodeRole role) const;

  // All server ids in insertion order (cached on first call is not needed;
  // callers typically ask once).
  [[nodiscard]] std::vector<NodeId> servers() const {
    return nodes_with_role(NodeRole::kServer);
  }
  [[nodiscard]] std::vector<NodeId> switches() const;

  // The unique switch a server attaches to. Throws std::logic_error if the
  // node is not a server or is not attached to exactly one switch.
  [[nodiscard]] NodeId attachment_switch(NodeId server) const;

  // Servers attached to a given switch.
  [[nodiscard]] std::vector<NodeId> attached_servers(NodeId sw) const;

  // -- queries --------------------------------------------------------------

  // BFS hop distances from `src` to all nodes; unreachable nodes get
  // kUnreachable. Servers other than `src` are never transited (they are
  // leaves by construction, but the guarantee is explicit).
  static constexpr std::uint32_t kUnreachable = 0xffffffffu;
  [[nodiscard]] std::vector<std::uint32_t> bfs_distances(NodeId src) const;

  // True if every node can reach every other node.
  [[nodiscard]] bool connected() const;

  // Human-readable label, e.g. "agg17(pod2)".
  [[nodiscard]] std::string label(NodeId id) const;

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<Adjacency>> adjacency_;
  std::array<std::uint32_t, 6> role_counts_{};
};

}  // namespace flattree
