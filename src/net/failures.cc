#include "net/failures.h"

#include <algorithm>
#include <stdexcept>

namespace flattree {

Graph remove_links(const Graph& graph, const std::vector<LinkId>& failed) {
  std::vector<bool> dead(graph.link_count(), false);
  for (LinkId id : failed) {
    if (id.index() >= graph.link_count()) {
      throw std::invalid_argument("remove_links: link id out of range");
    }
    dead[id.index()] = true;
  }
  Graph out;
  for (std::uint32_t i = 0; i < graph.node_count(); ++i) {
    const Node& n = graph.node(NodeId{i});
    out.add_node(n.role, n.pod);
  }
  for (std::uint32_t i = 0; i < graph.link_count(); ++i) {
    if (dead[i]) continue;
    const Link& l = graph.link(LinkId{i});
    out.add_link(l.a, l.b, l.capacity_bps);
  }
  return out;
}

std::vector<LinkId> sample_fabric_failures(const Graph& graph,
                                           double fraction, Rng& rng) {
  if (fraction < 0 || fraction > 1) {
    throw std::invalid_argument("sample_fabric_failures: bad fraction");
  }
  std::vector<LinkId> fabric;
  for (std::uint32_t i = 0; i < graph.link_count(); ++i) {
    const Link& l = graph.link(LinkId{i});
    if (is_switch(graph.node(l.a).role) && is_switch(graph.node(l.b).role)) {
      fabric.push_back(LinkId{i});
    }
  }
  shuffle(fabric, rng);
  fabric.resize(static_cast<std::size_t>(fraction * fabric.size()));
  std::sort(fabric.begin(), fabric.end());
  return fabric;
}

bool servers_connected(const Graph& graph) {
  const auto servers = graph.servers();
  if (servers.size() < 2) return true;
  const auto dist = graph.bfs_distances(servers.front());
  return std::all_of(servers.begin(), servers.end(), [&](NodeId s) {
    return dist[s.index()] != Graph::kUnreachable;
  });
}

}  // namespace flattree
