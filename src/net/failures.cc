#include "net/failures.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>

namespace flattree {

void FailureSet::merge(const FailureSet& other) {
  links.insert(links.end(), other.links.begin(), other.links.end());
  switches.insert(switches.end(), other.switches.begin(),
                  other.switches.end());
}

namespace {

// Walks one entity's fail/recover alternation across `events` (plus, at
// index `insert_pos`, the elements of `pending`). Throws on a fail of an
// already-failed entity or a recover of a not-failed one. The entity's id
// type selects which element list of each FailureSet it lives in.
template <typename Id>
void check_alternation(const std::vector<FailureEvent>& events,
                       const FailureEvent* pending, std::size_t insert_pos,
                       Id entity) {
  const auto contains = [&](const FailureSet& set) {
    if constexpr (std::is_same_v<Id, LinkId>) {
      return std::count(set.links.begin(), set.links.end(), entity) > 0;
    } else {
      return std::count(set.switches.begin(), set.switches.end(), entity) > 0;
    }
  };
  bool failed = false;
  const auto apply = [&](const FailureEvent& e) {
    if (!contains(e.elements)) return;
    if (e.recover) {
      if (!failed) {
        throw std::invalid_argument(
            "FailureSchedule: recover of an element that is not failed "
            "(recover-before-fail ordering)");
      }
      failed = false;
    } else {
      if (failed) {
        throw std::invalid_argument(
            "FailureSchedule: duplicate fail without an intervening recover");
      }
      failed = true;
    }
  };
  for (std::size_t i = 0; i <= events.size(); ++i) {
    if (pending != nullptr && i == insert_pos) apply(*pending);
    if (i < events.size()) apply(events[i]);
  }
}

// Checks every entity the event names, against `events` with the event
// inserted at `insert_pos`. Duplicate ids inside one element list trip the
// same alternation errors (a set failing {L0, L0} is a duplicate fail).
void check_event_alternation(const std::vector<FailureEvent>& events,
                             const FailureEvent& pending,
                             std::size_t insert_pos) {
  for (LinkId id : pending.elements.links) {
    check_alternation(events, &pending, insert_pos, id);
  }
  for (NodeId id : pending.elements.switches) {
    check_alternation(events, &pending, insert_pos, id);
  }
  // A duplicate inside the pending set itself walks the same entity twice
  // above and is caught there only if the prior state disagrees; catch the
  // literal duplicates explicitly.
  const auto has_duplicate = [](auto ids) {
    std::sort(ids.begin(), ids.end());
    return std::adjacent_find(ids.begin(), ids.end()) != ids.end();
  };
  if (has_duplicate(pending.elements.links) ||
      has_duplicate(pending.elements.switches)) {
    throw std::invalid_argument(
        "FailureSchedule: duplicate element inside one event");
  }
}

}  // namespace

void FailureSchedule::insert(FailureEvent event) {
  if (!(event.time_s >= 0.0)) {
    throw std::invalid_argument("FailureSchedule: event time must be >= 0");
  }
  // Stable insertion keeps equal-time events in the order they were added.
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), event.time_s,
      [](double t, const FailureEvent& e) { return t < e.time_s; });
  // Construction-time validation: inserting here must keep every named
  // entity's fail/recover alternation intact. Rejected events leave the
  // schedule untouched.
  check_event_alternation(
      events_, event, static_cast<std::size_t>(pos - events_.begin()));
  events_.insert(pos, std::move(event));
}

void FailureSchedule::validate() const {
  for (std::size_t i = 1; i < events_.size(); ++i) {
    if (events_[i].time_s < events_[i - 1].time_s) {
      throw std::invalid_argument("FailureSchedule: events out of order");
    }
  }
  for (const FailureEvent& e : events_) {
    for (LinkId id : e.elements.links) {
      check_alternation(events_, nullptr, 0, id);
    }
    for (NodeId id : e.elements.switches) {
      check_alternation(events_, nullptr, 0, id);
    }
  }
}

FailureSchedule& FailureSchedule::fail_at(double time_s,
                                          FailureSet elements) {
  insert(FailureEvent{time_s, false, std::move(elements)});
  return *this;
}

FailureSchedule& FailureSchedule::recover_at(double time_s,
                                             FailureSet elements) {
  insert(FailureEvent{time_s, true, std::move(elements)});
  return *this;
}

FailureSet FailureSchedule::active_at(double time_s) const {
  std::unordered_set<LinkId> links;
  std::unordered_set<NodeId> switches;
  for (const FailureEvent& event : events_) {
    if (event.time_s > time_s) break;
    for (LinkId id : event.elements.links) {
      if (event.recover) links.erase(id); else links.insert(id);
    }
    for (NodeId id : event.elements.switches) {
      if (event.recover) switches.erase(id); else switches.insert(id);
    }
  }
  FailureSet active;
  active.links.assign(links.begin(), links.end());
  active.switches.assign(switches.begin(), switches.end());
  std::sort(active.links.begin(), active.links.end());
  std::sort(active.switches.begin(), active.switches.end());
  return active;
}

Graph remove_links(const Graph& graph, const std::vector<LinkId>& failed) {
  return degrade(graph, FailureSet{failed, {}});
}

Graph degrade(const Graph& graph, const FailureSet& failures) {
  std::vector<bool> dead_link(graph.link_count(), false);
  for (LinkId id : failures.links) {
    if (id.index() >= graph.link_count()) {
      throw std::invalid_argument("degrade: link id out of range");
    }
    dead_link[id.index()] = true;
  }
  std::vector<bool> dead_switch(graph.node_count(), false);
  for (NodeId id : failures.switches) {
    if (id.index() >= graph.node_count()) {
      throw std::invalid_argument("degrade: node id out of range");
    }
    if (!is_switch(graph.node(id).role)) {
      throw std::invalid_argument("degrade: failed node is not a switch");
    }
    dead_switch[id.index()] = true;
  }
  Graph out;
  for (std::uint32_t i = 0; i < graph.node_count(); ++i) {
    const Node& n = graph.node(NodeId{i});
    out.add_node(n.role, n.pod);
  }
  for (std::uint32_t i = 0; i < graph.link_count(); ++i) {
    if (dead_link[i]) continue;
    const Link& l = graph.link(LinkId{i});
    // A failed switch severs its fabric links; server access links survive
    // (the server stays cabled to the dead box, unreachable through it).
    const bool fabric =
        is_switch(graph.node(l.a).role) && is_switch(graph.node(l.b).role);
    if (fabric && (dead_switch[l.a.index()] || dead_switch[l.b.index()])) {
      continue;
    }
    out.add_link(l.a, l.b, l.capacity_bps);
  }
  return out;
}

Graph degrade_mapped(const Graph& graph, const Graph& reference,
                     const FailureSet& failures) {
  const auto pair_key = [](NodeId a, NodeId b) {
    const auto lo = std::min(a.value(), b.value());
    const auto hi = std::max(a.value(), b.value());
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  };
  std::unordered_set<std::uint64_t> severed;
  for (LinkId id : failures.links) {
    if (id.index() >= reference.link_count()) {
      throw std::invalid_argument("degrade_mapped: link id out of range");
    }
    const Link& l = reference.link(id);
    severed.insert(pair_key(l.a, l.b));
  }
  FailureSet mapped;
  mapped.switches = failures.switches;
  for (std::uint32_t i = 0; i < graph.link_count(); ++i) {
    const Link& l = graph.link(LinkId{i});
    if (severed.contains(pair_key(l.a, l.b))) mapped.links.push_back(LinkId{i});
  }
  return degrade(graph, mapped);
}

std::vector<LinkId> sample_fabric_failures(const Graph& graph,
                                           double fraction, Rng& rng) {
  // Written as a negated conjunction so NaN (which compares false against
  // everything) is rejected too.
  if (!(fraction >= 0.0 && fraction <= 1.0)) {
    throw std::invalid_argument("sample_fabric_failures: bad fraction");
  }
  std::vector<LinkId> fabric;
  for (std::uint32_t i = 0; i < graph.link_count(); ++i) {
    const Link& l = graph.link(LinkId{i});
    if (is_switch(graph.node(l.a).role) && is_switch(graph.node(l.b).role)) {
      fabric.push_back(LinkId{i});
    }
  }
  shuffle(fabric, rng);
  fabric.resize(static_cast<std::size_t>(fraction * fabric.size()));
  std::sort(fabric.begin(), fabric.end());
  return fabric;
}

std::vector<NodeId> sample_switch_failures(const Graph& graph, NodeRole role,
                                           double fraction, Rng& rng) {
  if (!(fraction >= 0.0 && fraction <= 1.0)) {
    throw std::invalid_argument("sample_switch_failures: bad fraction");
  }
  if (!is_switch(role)) {
    throw std::invalid_argument("sample_switch_failures: servers never fail");
  }
  std::vector<NodeId> pool = graph.nodes_with_role(role);
  shuffle(pool, rng);
  pool.resize(static_cast<std::size_t>(fraction * pool.size()));
  std::sort(pool.begin(), pool.end());
  return pool;
}

FailureSet core_column_failure(const Graph& graph, std::uint32_t first_core,
                               std::uint32_t count) {
  const std::vector<NodeId> cores = graph.nodes_with_role(NodeRole::kCore);
  if (cores.empty()) {
    throw std::invalid_argument("core_column_failure: graph has no cores");
  }
  if (count > cores.size()) {
    throw std::invalid_argument("core_column_failure: count exceeds cores");
  }
  FailureSet set;
  for (std::uint32_t i = 0; i < count; ++i) {
    set.switches.push_back(cores[(first_core + i) % cores.size()]);
  }
  std::sort(set.switches.begin(), set.switches.end());
  return set;
}

namespace {

std::uint64_t undirected_pair_key(NodeId a, NodeId b) {
  const auto lo = std::min(a.value(), b.value());
  const auto hi = std::max(a.value(), b.value());
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

}  // namespace

std::vector<LinkId> links_not_in(const Graph& graph, const Graph& other) {
  std::unordered_map<std::uint64_t, int> budget;
  for (std::uint32_t i = 0; i < other.link_count(); ++i) {
    const Link& l = other.link(LinkId{i});
    ++budget[undirected_pair_key(l.a, l.b)];
  }
  std::vector<LinkId> extra;
  for (std::uint32_t i = 0; i < graph.link_count(); ++i) {
    const Link& l = graph.link(LinkId{i});
    if (budget[undirected_pair_key(l.a, l.b)]-- > 0) continue;
    extra.push_back(LinkId{i});
  }
  return extra;
}

Graph graph_union(const Graph& base, const Graph& extra) {
  Graph out = base;
  for (LinkId id : links_not_in(extra, base)) {
    const Link& l = extra.link(id);
    out.add_link(l.a, l.b, l.capacity_bps);
  }
  return out;
}

bool servers_connected(const Graph& graph) {
  const auto servers = graph.servers();
  if (servers.size() < 2) return true;
  const auto dist = graph.bfs_distances(servers.front());
  return std::all_of(servers.begin(), servers.end(), [&](NodeId s) {
    return dist[s.index()] != Graph::kUnreachable;
  });
}

}  // namespace flattree
