# Empty dependencies file for bench_coflow.
# This may be replaced when dependencies are built.
