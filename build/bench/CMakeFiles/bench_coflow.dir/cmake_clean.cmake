file(REMOVE_RECURSE
  "CMakeFiles/bench_coflow.dir/bench_coflow.cc.o"
  "CMakeFiles/bench_coflow.dir/bench_coflow.cc.o.d"
  "bench_coflow"
  "bench_coflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
