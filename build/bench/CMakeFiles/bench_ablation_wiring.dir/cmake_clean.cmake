file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_wiring.dir/bench_ablation_wiring.cc.o"
  "CMakeFiles/bench_ablation_wiring.dir/bench_ablation_wiring.cc.o.d"
  "bench_ablation_wiring"
  "bench_ablation_wiring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_wiring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
