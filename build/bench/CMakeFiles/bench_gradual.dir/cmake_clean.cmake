file(REMOVE_RECURSE
  "CMakeFiles/bench_gradual.dir/bench_gradual.cc.o"
  "CMakeFiles/bench_gradual.dir/bench_gradual.cc.o.d"
  "bench_gradual"
  "bench_gradual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gradual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
