# Empty compiler generated dependencies file for bench_gradual.
# This may be replaced when dependencies are built.
