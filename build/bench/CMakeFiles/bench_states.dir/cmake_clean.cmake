file(REMOVE_RECURSE
  "CMakeFiles/bench_states.dir/bench_states.cc.o"
  "CMakeFiles/bench_states.dir/bench_states.cc.o.d"
  "bench_states"
  "bench_states.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
