# Empty compiler generated dependencies file for bench_states.
# This may be replaced when dependencies are built.
