file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mn.dir/bench_ablation_mn.cc.o"
  "CMakeFiles/bench_ablation_mn.dir/bench_ablation_mn.cc.o.d"
  "bench_ablation_mn"
  "bench_ablation_mn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
