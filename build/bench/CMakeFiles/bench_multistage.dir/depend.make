# Empty dependencies file for bench_multistage.
# This may be replaced when dependencies are built.
