file(REMOVE_RECURSE
  "libft_net.a"
)
