file(REMOVE_RECURSE
  "CMakeFiles/ft_net.dir/capacity.cc.o"
  "CMakeFiles/ft_net.dir/capacity.cc.o.d"
  "CMakeFiles/ft_net.dir/dot.cc.o"
  "CMakeFiles/ft_net.dir/dot.cc.o.d"
  "CMakeFiles/ft_net.dir/failures.cc.o"
  "CMakeFiles/ft_net.dir/failures.cc.o.d"
  "CMakeFiles/ft_net.dir/graph.cc.o"
  "CMakeFiles/ft_net.dir/graph.cc.o.d"
  "CMakeFiles/ft_net.dir/rng.cc.o"
  "CMakeFiles/ft_net.dir/rng.cc.o.d"
  "CMakeFiles/ft_net.dir/stats.cc.o"
  "CMakeFiles/ft_net.dir/stats.cc.o.d"
  "libft_net.a"
  "libft_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
