
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/capacity.cc" "src/net/CMakeFiles/ft_net.dir/capacity.cc.o" "gcc" "src/net/CMakeFiles/ft_net.dir/capacity.cc.o.d"
  "/root/repo/src/net/dot.cc" "src/net/CMakeFiles/ft_net.dir/dot.cc.o" "gcc" "src/net/CMakeFiles/ft_net.dir/dot.cc.o.d"
  "/root/repo/src/net/failures.cc" "src/net/CMakeFiles/ft_net.dir/failures.cc.o" "gcc" "src/net/CMakeFiles/ft_net.dir/failures.cc.o.d"
  "/root/repo/src/net/graph.cc" "src/net/CMakeFiles/ft_net.dir/graph.cc.o" "gcc" "src/net/CMakeFiles/ft_net.dir/graph.cc.o.d"
  "/root/repo/src/net/rng.cc" "src/net/CMakeFiles/ft_net.dir/rng.cc.o" "gcc" "src/net/CMakeFiles/ft_net.dir/rng.cc.o.d"
  "/root/repo/src/net/stats.cc" "src/net/CMakeFiles/ft_net.dir/stats.cc.o" "gcc" "src/net/CMakeFiles/ft_net.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
