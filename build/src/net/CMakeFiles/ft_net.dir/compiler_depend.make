# Empty compiler generated dependencies file for ft_net.
# This may be replaced when dependencies are built.
