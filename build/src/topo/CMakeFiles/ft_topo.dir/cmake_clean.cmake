file(REMOVE_RECURSE
  "CMakeFiles/ft_topo.dir/clos.cc.o"
  "CMakeFiles/ft_topo.dir/clos.cc.o.d"
  "CMakeFiles/ft_topo.dir/params.cc.o"
  "CMakeFiles/ft_topo.dir/params.cc.o.d"
  "CMakeFiles/ft_topo.dir/random_graph.cc.o"
  "CMakeFiles/ft_topo.dir/random_graph.cc.o.d"
  "libft_topo.a"
  "libft_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
