
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/clos.cc" "src/topo/CMakeFiles/ft_topo.dir/clos.cc.o" "gcc" "src/topo/CMakeFiles/ft_topo.dir/clos.cc.o.d"
  "/root/repo/src/topo/params.cc" "src/topo/CMakeFiles/ft_topo.dir/params.cc.o" "gcc" "src/topo/CMakeFiles/ft_topo.dir/params.cc.o.d"
  "/root/repo/src/topo/random_graph.cc" "src/topo/CMakeFiles/ft_topo.dir/random_graph.cc.o" "gcc" "src/topo/CMakeFiles/ft_topo.dir/random_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/ft_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
