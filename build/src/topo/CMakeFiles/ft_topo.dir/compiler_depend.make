# Empty compiler generated dependencies file for ft_topo.
# This may be replaced when dependencies are built.
