file(REMOVE_RECURSE
  "libft_topo.a"
)
