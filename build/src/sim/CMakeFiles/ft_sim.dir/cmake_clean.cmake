file(REMOVE_RECURSE
  "CMakeFiles/ft_sim.dir/fluid.cc.o"
  "CMakeFiles/ft_sim.dir/fluid.cc.o.d"
  "CMakeFiles/ft_sim.dir/packet.cc.o"
  "CMakeFiles/ft_sim.dir/packet.cc.o.d"
  "libft_sim.a"
  "libft_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
