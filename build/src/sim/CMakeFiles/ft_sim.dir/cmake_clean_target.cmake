file(REMOVE_RECURSE
  "libft_sim.a"
)
