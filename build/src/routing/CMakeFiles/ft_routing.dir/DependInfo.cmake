
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/ecmp.cc" "src/routing/CMakeFiles/ft_routing.dir/ecmp.cc.o" "gcc" "src/routing/CMakeFiles/ft_routing.dir/ecmp.cc.o.d"
  "/root/repo/src/routing/ksp.cc" "src/routing/CMakeFiles/ft_routing.dir/ksp.cc.o" "gcc" "src/routing/CMakeFiles/ft_routing.dir/ksp.cc.o.d"
  "/root/repo/src/routing/path.cc" "src/routing/CMakeFiles/ft_routing.dir/path.cc.o" "gcc" "src/routing/CMakeFiles/ft_routing.dir/path.cc.o.d"
  "/root/repo/src/routing/rules.cc" "src/routing/CMakeFiles/ft_routing.dir/rules.cc.o" "gcc" "src/routing/CMakeFiles/ft_routing.dir/rules.cc.o.d"
  "/root/repo/src/routing/segment_routing.cc" "src/routing/CMakeFiles/ft_routing.dir/segment_routing.cc.o" "gcc" "src/routing/CMakeFiles/ft_routing.dir/segment_routing.cc.o.d"
  "/root/repo/src/routing/source_routing.cc" "src/routing/CMakeFiles/ft_routing.dir/source_routing.cc.o" "gcc" "src/routing/CMakeFiles/ft_routing.dir/source_routing.cc.o.d"
  "/root/repo/src/routing/two_level.cc" "src/routing/CMakeFiles/ft_routing.dir/two_level.cc.o" "gcc" "src/routing/CMakeFiles/ft_routing.dir/two_level.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/ft_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
