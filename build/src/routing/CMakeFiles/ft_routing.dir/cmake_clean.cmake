file(REMOVE_RECURSE
  "CMakeFiles/ft_routing.dir/ecmp.cc.o"
  "CMakeFiles/ft_routing.dir/ecmp.cc.o.d"
  "CMakeFiles/ft_routing.dir/ksp.cc.o"
  "CMakeFiles/ft_routing.dir/ksp.cc.o.d"
  "CMakeFiles/ft_routing.dir/path.cc.o"
  "CMakeFiles/ft_routing.dir/path.cc.o.d"
  "CMakeFiles/ft_routing.dir/rules.cc.o"
  "CMakeFiles/ft_routing.dir/rules.cc.o.d"
  "CMakeFiles/ft_routing.dir/segment_routing.cc.o"
  "CMakeFiles/ft_routing.dir/segment_routing.cc.o.d"
  "CMakeFiles/ft_routing.dir/source_routing.cc.o"
  "CMakeFiles/ft_routing.dir/source_routing.cc.o.d"
  "CMakeFiles/ft_routing.dir/two_level.cc.o"
  "CMakeFiles/ft_routing.dir/two_level.cc.o.d"
  "libft_routing.a"
  "libft_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
