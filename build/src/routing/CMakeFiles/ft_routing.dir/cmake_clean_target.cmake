file(REMOVE_RECURSE
  "libft_routing.a"
)
