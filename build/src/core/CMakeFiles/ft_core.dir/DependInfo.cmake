
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/addressing.cc" "src/core/CMakeFiles/ft_core.dir/addressing.cc.o" "gcc" "src/core/CMakeFiles/ft_core.dir/addressing.cc.o.d"
  "/root/repo/src/core/flat_tree.cc" "src/core/CMakeFiles/ft_core.dir/flat_tree.cc.o" "gcc" "src/core/CMakeFiles/ft_core.dir/flat_tree.cc.o.d"
  "/root/repo/src/core/multi_stage.cc" "src/core/CMakeFiles/ft_core.dir/multi_stage.cc.o" "gcc" "src/core/CMakeFiles/ft_core.dir/multi_stage.cc.o.d"
  "/root/repo/src/core/profiling.cc" "src/core/CMakeFiles/ft_core.dir/profiling.cc.o" "gcc" "src/core/CMakeFiles/ft_core.dir/profiling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/ft_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/ft_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
