file(REMOVE_RECURSE
  "CMakeFiles/ft_core.dir/addressing.cc.o"
  "CMakeFiles/ft_core.dir/addressing.cc.o.d"
  "CMakeFiles/ft_core.dir/flat_tree.cc.o"
  "CMakeFiles/ft_core.dir/flat_tree.cc.o.d"
  "CMakeFiles/ft_core.dir/multi_stage.cc.o"
  "CMakeFiles/ft_core.dir/multi_stage.cc.o.d"
  "CMakeFiles/ft_core.dir/profiling.cc.o"
  "CMakeFiles/ft_core.dir/profiling.cc.o.d"
  "libft_core.a"
  "libft_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
