# Empty dependencies file for ft_control.
# This may be replaced when dependencies are built.
