file(REMOVE_RECURSE
  "libft_control.a"
)
