
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/advisor.cc" "src/control/CMakeFiles/ft_control.dir/advisor.cc.o" "gcc" "src/control/CMakeFiles/ft_control.dir/advisor.cc.o.d"
  "/root/repo/src/control/controller.cc" "src/control/CMakeFiles/ft_control.dir/controller.cc.o" "gcc" "src/control/CMakeFiles/ft_control.dir/controller.cc.o.d"
  "/root/repo/src/control/rule_compiler.cc" "src/control/CMakeFiles/ft_control.dir/rule_compiler.cc.o" "gcc" "src/control/CMakeFiles/ft_control.dir/rule_compiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ft_core.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/ft_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ft_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/ft_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
