file(REMOVE_RECURSE
  "CMakeFiles/ft_control.dir/advisor.cc.o"
  "CMakeFiles/ft_control.dir/advisor.cc.o.d"
  "CMakeFiles/ft_control.dir/controller.cc.o"
  "CMakeFiles/ft_control.dir/controller.cc.o.d"
  "CMakeFiles/ft_control.dir/rule_compiler.cc.o"
  "CMakeFiles/ft_control.dir/rule_compiler.cc.o.d"
  "libft_control.a"
  "libft_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
