# Empty compiler generated dependencies file for ft_lp.
# This may be replaced when dependencies are built.
