file(REMOVE_RECURSE
  "CMakeFiles/ft_lp.dir/mcf.cc.o"
  "CMakeFiles/ft_lp.dir/mcf.cc.o.d"
  "CMakeFiles/ft_lp.dir/simplex.cc.o"
  "CMakeFiles/ft_lp.dir/simplex.cc.o.d"
  "CMakeFiles/ft_lp.dir/throughput.cc.o"
  "CMakeFiles/ft_lp.dir/throughput.cc.o.d"
  "libft_lp.a"
  "libft_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
