file(REMOVE_RECURSE
  "libft_traffic.a"
)
