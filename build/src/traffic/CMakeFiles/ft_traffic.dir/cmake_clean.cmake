file(REMOVE_RECURSE
  "CMakeFiles/ft_traffic.dir/apps.cc.o"
  "CMakeFiles/ft_traffic.dir/apps.cc.o.d"
  "CMakeFiles/ft_traffic.dir/io.cc.o"
  "CMakeFiles/ft_traffic.dir/io.cc.o.d"
  "CMakeFiles/ft_traffic.dir/patterns.cc.o"
  "CMakeFiles/ft_traffic.dir/patterns.cc.o.d"
  "CMakeFiles/ft_traffic.dir/traces.cc.o"
  "CMakeFiles/ft_traffic.dir/traces.cc.o.d"
  "libft_traffic.a"
  "libft_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
