
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/apps.cc" "src/traffic/CMakeFiles/ft_traffic.dir/apps.cc.o" "gcc" "src/traffic/CMakeFiles/ft_traffic.dir/apps.cc.o.d"
  "/root/repo/src/traffic/io.cc" "src/traffic/CMakeFiles/ft_traffic.dir/io.cc.o" "gcc" "src/traffic/CMakeFiles/ft_traffic.dir/io.cc.o.d"
  "/root/repo/src/traffic/patterns.cc" "src/traffic/CMakeFiles/ft_traffic.dir/patterns.cc.o" "gcc" "src/traffic/CMakeFiles/ft_traffic.dir/patterns.cc.o.d"
  "/root/repo/src/traffic/traces.cc" "src/traffic/CMakeFiles/ft_traffic.dir/traces.cc.o" "gcc" "src/traffic/CMakeFiles/ft_traffic.dir/traces.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/ft_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/ft_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
