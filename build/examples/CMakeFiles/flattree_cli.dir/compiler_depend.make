# Empty compiler generated dependencies file for flattree_cli.
# This may be replaced when dependencies are built.
