file(REMOVE_RECURSE
  "CMakeFiles/flattree_cli.dir/flattree_cli.cpp.o"
  "CMakeFiles/flattree_cli.dir/flattree_cli.cpp.o.d"
  "flattree_cli"
  "flattree_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flattree_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
