file(REMOVE_RECURSE
  "CMakeFiles/multistage_tour.dir/multistage_tour.cpp.o"
  "CMakeFiles/multistage_tour.dir/multistage_tour.cpp.o.d"
  "multistage_tour"
  "multistage_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multistage_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
