
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/multistage_tour.cpp" "examples/CMakeFiles/multistage_tour.dir/multistage_tour.cpp.o" "gcc" "examples/CMakeFiles/multistage_tour.dir/multistage_tour.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ft_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/ft_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/ft_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/ft_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ft_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/ft_control.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/ft_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ft_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
