# Empty dependencies file for multistage_tour.
# This may be replaced when dependencies are built.
