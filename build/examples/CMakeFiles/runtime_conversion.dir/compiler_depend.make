# Empty compiler generated dependencies file for runtime_conversion.
# This may be replaced when dependencies are built.
