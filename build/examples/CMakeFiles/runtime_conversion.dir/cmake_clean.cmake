file(REMOVE_RECURSE
  "CMakeFiles/runtime_conversion.dir/runtime_conversion.cpp.o"
  "CMakeFiles/runtime_conversion.dir/runtime_conversion.cpp.o.d"
  "runtime_conversion"
  "runtime_conversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_conversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
