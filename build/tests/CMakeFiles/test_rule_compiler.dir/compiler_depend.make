# Empty compiler generated dependencies file for test_rule_compiler.
# This may be replaced when dependencies are built.
