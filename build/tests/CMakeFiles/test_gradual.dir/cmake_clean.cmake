file(REMOVE_RECURSE
  "CMakeFiles/test_gradual.dir/test_gradual.cc.o"
  "CMakeFiles/test_gradual.dir/test_gradual.cc.o.d"
  "test_gradual"
  "test_gradual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gradual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
