# Empty compiler generated dependencies file for test_gradual.
# This may be replaced when dependencies are built.
