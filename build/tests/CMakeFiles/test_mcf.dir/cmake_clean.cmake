file(REMOVE_RECURSE
  "CMakeFiles/test_mcf.dir/test_mcf.cc.o"
  "CMakeFiles/test_mcf.dir/test_mcf.cc.o.d"
  "test_mcf"
  "test_mcf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mcf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
