# Empty compiler generated dependencies file for test_mcf.
# This may be replaced when dependencies are built.
