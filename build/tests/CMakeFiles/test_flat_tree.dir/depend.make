# Empty dependencies file for test_flat_tree.
# This may be replaced when dependencies are built.
