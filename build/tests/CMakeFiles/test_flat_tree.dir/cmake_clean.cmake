file(REMOVE_RECURSE
  "CMakeFiles/test_flat_tree.dir/test_flat_tree.cc.o"
  "CMakeFiles/test_flat_tree.dir/test_flat_tree.cc.o.d"
  "test_flat_tree"
  "test_flat_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flat_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
