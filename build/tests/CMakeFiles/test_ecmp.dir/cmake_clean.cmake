file(REMOVE_RECURSE
  "CMakeFiles/test_ecmp.dir/test_ecmp.cc.o"
  "CMakeFiles/test_ecmp.dir/test_ecmp.cc.o.d"
  "test_ecmp"
  "test_ecmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
