# Empty compiler generated dependencies file for test_clos.
# This may be replaced when dependencies are built.
