file(REMOVE_RECURSE
  "CMakeFiles/test_clos.dir/test_clos.cc.o"
  "CMakeFiles/test_clos.dir/test_clos.cc.o.d"
  "test_clos"
  "test_clos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
