file(REMOVE_RECURSE
  "CMakeFiles/test_random_graph.dir/test_random_graph.cc.o"
  "CMakeFiles/test_random_graph.dir/test_random_graph.cc.o.d"
  "test_random_graph"
  "test_random_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
