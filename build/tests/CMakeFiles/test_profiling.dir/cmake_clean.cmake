file(REMOVE_RECURSE
  "CMakeFiles/test_profiling.dir/test_profiling.cc.o"
  "CMakeFiles/test_profiling.dir/test_profiling.cc.o.d"
  "test_profiling"
  "test_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
