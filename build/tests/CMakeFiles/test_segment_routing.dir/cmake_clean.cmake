file(REMOVE_RECURSE
  "CMakeFiles/test_segment_routing.dir/test_segment_routing.cc.o"
  "CMakeFiles/test_segment_routing.dir/test_segment_routing.cc.o.d"
  "test_segment_routing"
  "test_segment_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_segment_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
