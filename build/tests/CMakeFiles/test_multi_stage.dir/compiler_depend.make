# Empty compiler generated dependencies file for test_multi_stage.
# This may be replaced when dependencies are built.
