file(REMOVE_RECURSE
  "CMakeFiles/test_multi_stage.dir/test_multi_stage.cc.o"
  "CMakeFiles/test_multi_stage.dir/test_multi_stage.cc.o.d"
  "test_multi_stage"
  "test_multi_stage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_stage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
