file(REMOVE_RECURSE
  "CMakeFiles/test_source_routing.dir/test_source_routing.cc.o"
  "CMakeFiles/test_source_routing.dir/test_source_routing.cc.o.d"
  "test_source_routing"
  "test_source_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_source_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
