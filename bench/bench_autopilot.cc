// Closed-loop autopilot: demand-aware reconfiguration driven by live
// telemetry, measured against the static endpoints of the convertibility
// spectrum.
//
// The paper's operational story is that flat-tree is *convertible*: Clos
// for rack locality, local for Pod locality, global for none (§5.2). This
// bench closes the loop the paper leaves to the operator: per decision
// epoch, both simulators' per-flow telemetry folds into a decayed
// inter-Pod demand estimate (TrafficMatrixEstimator), the ReconfigPolicy
// prices the Advisor's recommendation (fluid-model FCT forecast vs the
// Table-3 conversion delay) behind hysteresis gates, and accepted
// decisions run through the storm-tolerant staged executor while traffic
// keeps flowing (AutopilotLoop).
//
// Arms, per time-varying trace:
//   autopilot      the closed loop, starting from uniform Clos
//   static-clos / static-local / static-global
//                  the same epoch-partitioned serving on one fixed mode
//   oracle         per-epoch best uniform mode with free, instant
//                  conversions — the lower bound no real controller hits
//
// Traces: a diurnal ramp (Web's Pod-local mix drifting to Hadoop's
// network-wide shuffle over 12 s) and multi-tenant churn (tenants arrive,
// emit with per-tenant locality, depart). A third cell family drives a
// square-wave Web <-> Hadoop oscillation against the autopilot with and
// without hysteresis: the dwell + gain gates must bound conversions to at
// most one per demand regime while the ungated loop thrashes.
//
// The claims to check: the closed loop beats BOTH static Clos and static
// global on aggregate FCT under both shifting traces (it tracks the
// demand), and the hysteresis cell converts at most once per regime.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/util.h"
#include "control/autopilot/autopilot.h"
#include "control/conversion_exec.h"
#include "control/controller.h"
#include "core/flat_tree.h"
#include "obs/telemetry.h"
#include "sim/packet.h"
#include "traffic/traces.h"

namespace flattree {
namespace {

constexpr double kDuration = 12.0;
// The churn trace runs longer: the closed loop pays a fixed convergence
// cost (cold start on all-Clos plus two staged conversions) before it
// tracks the oracle's endpoint, while a static mode pays its locality
// mismatch every epoch. Twenty seconds is enough demand history for the
// amortization the autopilot exists to win.
constexpr double kChurnDuration = 20.0;
constexpr double kEpoch = 1.0;
constexpr double kSquarePeriod = 4.0;  // regime = period / 2

enum class Arm : std::uint8_t {
  kAutopilot,
  kStaticClos,
  kStaticLocal,
  kStaticGlobal,
  kOracle,
  kThrashHysteresis,
  kThrashUngated,
};

struct Cell {
  const char* trace;
  const char* arm;
  Arm kind;
  std::size_t workload;  // index into the generated trace list
  double duration_s;
};

struct Outcome {
  std::size_t flows{0};
  std::size_t completed{0};
  double fct_sum_s{0.0};
  std::uint32_t conversions{0};
  std::uint32_t committed{0};
  std::uint32_t decisions_convert{0};
  std::uint32_t holds{0};
  std::string final_modes;
  // Packet-side telemetry spot check (autopilot arms with >= 1 conversion):
  // the first conversion's timeline replayed through the packet simulator,
  // its exported flow records folded through PairTelemetry.
  std::size_t packet_pairs{0};
  double packet_bytes{0.0};
};

std::string mode_string(const ModeAssignment& assignment) {
  std::string s;
  for (PodMode m : assignment.pod_modes) {
    s += m == PodMode::kClos ? 'C' : (m == PodMode::kLocal ? 'L' : 'G');
  }
  return s;
}

// The same epoch partition AutopilotLoop uses, so static and oracle arms
// are served apples-to-apples with the closed loop.
std::vector<Workload> bucketize(const Workload& flows, double duration_s) {
  const auto epochs =
      static_cast<std::size_t>(std::ceil(duration_s / kEpoch - 1e-12));
  std::vector<Workload> bucket(epochs);
  for (const Flow& f : flows) {
    const auto e = static_cast<std::size_t>(f.start_s / kEpoch);
    bucket[std::min(e, bucket.size() - 1)].push_back(f);
  }
  return bucket;
}

struct EpochStats {
  std::size_t completed{0};
  double fct_sum_s{0.0};
};

EpochStats serve_epoch(const CompiledMode& mode, const Workload& flows,
                       const obs::ObsSink& sink) {
  EpochStats stats;
  if (flows.empty()) return stats;
  FluidOptions opts;
  opts.sink = sink;
  FluidSimulator sim{mode.graph(),
                     [&mode](NodeId src, NodeId dst, std::uint32_t) {
                       return mode.paths().server_paths(src, dst);
                     },
                     opts};
  for (const FluidFlowResult& r : sim.run(flows)) {
    if (!r.completed) continue;
    ++stats.completed;
    stats.fct_sum_s += r.fct_s();
  }
  return stats;
}

ReconfigPolicyOptions policy_defaults() {
  ReconfigPolicyOptions policy;
  policy.min_dwell_s = 1.5;
  policy.min_gain_frac = 0.05;
  policy.gain_cost_multiple = 1.0;
  policy.horizon_s = 2.0;
  // Enough synthetic flows per matrix entry that the forecast feels the
  // multiplexing the real epoch traffic creates — two bundles per entry
  // under-predicts congestion gains at testbed load.
  policy.flows_per_entry = 6;
  return policy;
}

Outcome run_autopilot(const Controller& controller, const Workload& flows,
                      double duration_s, const ReconfigPolicyOptions& policy,
                      std::uint64_t seed, const obs::ObsSink& sink) {
  AutopilotOptions opts;
  opts.epoch_s = kEpoch;
  opts.estimator.half_life_s = 1.0;
  opts.policy = policy;
  opts.exec.stage_checkpoints = true;
  opts.exec.seed = seed;
  opts.exec.sink = sink;
  opts.sink = sink;
  const AutopilotLoop loop{controller, opts};
  const AutopilotResult result =
      loop.run(flows, ModeAssignment::uniform(controller.tree().clos().pods,
                                              PodMode::kClos),
               duration_s);

  Outcome out;
  out.flows = result.flows;
  out.completed = result.completed;
  out.fct_sum_s = result.fct_sum_s;
  out.conversions = result.conversions_started;
  out.committed = result.conversions_committed;
  for (const EpochRecord& rec : result.epochs) {
    if (rec.decision.action == PolicyAction::kConvert) {
      ++out.decisions_convert;
    } else {
      ++out.holds;
    }
  }
  out.final_modes = mode_string(result.final_assignment);

  // Both simulators feed the estimator: replay the first conversion's
  // timeline through the packet simulator and fold its exported records
  // through the pair-telemetry path.
  if (!result.conversions.empty()) {
    const ExecutionReport& report = result.conversions.front();
    const std::vector<Workload> bucket = bucketize(flows, duration_s);
    Workload epoch_flows;
    for (const EpochRecord& rec : result.epochs) {
      if (rec.conversion_executed) {
        epoch_flows = bucket[rec.epoch];
        break;
      }
    }
    PacketSim sim;
    sim.set_network(*report.timeline.front().graph);
    const std::size_t spot = std::min<std::size_t>(8, epoch_flows.size());
    Workload spot_flows;
    for (std::size_t i = 0; i < spot; ++i) {
      const Flow& f = epoch_flows[i];
      sim.add_flow(f.src, f.dst, 2e6, 0.0,
                   conversion_paths_for(report, f));
      spot_flows.push_back(f);
    }
    drive_packet_sim(sim, report, spot_flows, report.finish_s + 5.0);
    obs::PairTelemetry telemetry;
    telemetry.record_all(sim.export_flow_records());
    out.packet_pairs = telemetry.pair_count();
    out.packet_bytes = telemetry.total_bytes();
  }
  return out;
}

Outcome run_static(const Controller& controller, const Workload& flows,
                   double duration_s, PodMode mode,
                   const obs::ObsSink& sink) {
  const CompiledMode compiled = controller.compile_uniform(mode);
  Outcome out;
  for (const Workload& epoch : bucketize(flows, duration_s)) {
    out.flows += epoch.size();
    const EpochStats stats = serve_epoch(compiled, epoch, sink);
    out.completed += stats.completed;
    out.fct_sum_s += stats.fct_sum_s;
  }
  out.final_modes = mode_string(compiled.assignment());
  return out;
}

Outcome run_oracle(const Controller& controller, const Workload& flows,
                   double duration_s, const obs::ObsSink& sink) {
  const CompiledMode modes[3] = {controller.compile_uniform(PodMode::kClos),
                                 controller.compile_uniform(PodMode::kLocal),
                                 controller.compile_uniform(PodMode::kGlobal)};
  Outcome out;
  std::size_t last_best = 0;
  for (const Workload& epoch : bucketize(flows, duration_s)) {
    out.flows += epoch.size();
    EpochStats best;
    bool first = true;
    std::size_t best_i = last_best;
    for (std::size_t i = 0; i < 3; ++i) {
      const EpochStats stats = serve_epoch(modes[i], epoch, sink);
      if (first || stats.fct_sum_s < best.fct_sum_s) {
        best = stats;
        best_i = i;
        first = false;
      }
    }
    if (best_i != last_best) ++out.conversions;  // free, instant
    last_best = best_i;
    out.completed += best.completed;
    out.fct_sum_s += best.fct_sum_s;
  }
  out.final_modes = mode_string(modes[last_best].assignment());
  return out;
}

void run(int argc, char** argv) {
  exec::ExperimentRunner runner{
      bench::parse_runner_options("autopilot", argc, argv, 41)};

  FlatTreeParams params;
  params.clos = ClosParams::testbed();
  params.six_port_per_column = 1;
  params.four_port_per_column = 1;
  ControllerOptions ctl_opts;
  ctl_opts.count_rules = true;  // the policy prices real rule churn
  // The staged executor pushes every tracked pair's route rules through the
  // Table-3 per-rule delays, so conversion time scales with k and with the
  // paper's §4.3 distributed-controller fan-out. One controller per switch
  // (24) and 2-way multipath keep a full-fabric conversion at a few
  // seconds — in scale with the decision epoch, as the paper's ~1 s
  // testbed conversions are to its operational cadence.
  ctl_opts.delay.controllers = 24;
  ctl_opts.k_global = ctl_opts.k_local = ctl_opts.k_clos = 2;
  ctl_opts.sink = runner.obs();
  const Controller controller{FlatTree{params}, ctl_opts};

  // Equal offered load on both endpoints of each blend so only the
  // locality mix (and hence the right mode) shifts over time.
  TraceParams web = TraceParams::web();
  TraceParams hadoop = TraceParams::hadoop1();
  web.flows_per_s = hadoop.flows_per_s = 600.0;
  web.mean_flow_bytes = hadoop.mean_flow_bytes = 8e6;

  ModulatedTraceParams diurnal;
  diurnal.low = web;
  diurnal.high = hadoop;
  diurnal.duration_s = kDuration;
  diurnal.shape = ModulatedTraceParams::Shape::kRamp;
  diurnal.seed = runner.seed();

  TenantChurnParams churn;
  churn.duration_s = kChurnDuration;
  churn.arrivals_per_s = 0.75;
  churn.mean_lifetime_s = 4.0;
  churn.flows_per_s = 300.0;
  churn.mean_flow_bytes = 8e6;
  churn.seed = runner.seed() + 1;

  ModulatedTraceParams square = diurnal;
  square.shape = ModulatedTraceParams::Shape::kSquare;
  square.period_s = kSquarePeriod;

  const Workload traces[3] = {
      generate_modulated_trace(params.clos, diurnal),
      generate_tenant_churn(params.clos, churn),
      generate_modulated_trace(params.clos, square)};

  const Cell cells[] = {
      {"diurnal", "autopilot", Arm::kAutopilot, 0, kDuration},
      {"diurnal", "static-clos", Arm::kStaticClos, 0, kDuration},
      {"diurnal", "static-local", Arm::kStaticLocal, 0, kDuration},
      {"diurnal", "static-global", Arm::kStaticGlobal, 0, kDuration},
      {"diurnal", "oracle", Arm::kOracle, 0, kDuration},
      {"churn", "autopilot", Arm::kAutopilot, 1, kChurnDuration},
      {"churn", "static-clos", Arm::kStaticClos, 1, kChurnDuration},
      {"churn", "static-local", Arm::kStaticLocal, 1, kChurnDuration},
      {"churn", "static-global", Arm::kStaticGlobal, 1, kChurnDuration},
      {"churn", "oracle", Arm::kOracle, 1, kChurnDuration},
      {"square", "hysteresis", Arm::kThrashHysteresis, 2, kDuration},
      {"square", "ungated", Arm::kThrashUngated, 2, kDuration},
  };
  constexpr std::size_t kCells = sizeof(cells) / sizeof(cells[0]);

  bench::print_header(
      "Closed-loop autopilot vs the static convertibility endpoints",
      "testbed flat-tree (24 servers); per 1 s epoch the fluid-served\n"
      "telemetry folds into a decayed demand estimate, the policy prices\n"
      "the Advisor's target (FCT forecast vs Table-3 delay) behind dwell +\n"
      "gain hysteresis, and accepted conversions run through the staged\n"
      "storm-tolerant executor while traffic flows. Traces: diurnal = Web\n"
      "(Pod-local) ramping to Hadoop (network-wide) over 12 s; churn =\n"
      "20 s of tenant arrival/departure with per-tenant locality;\n"
      "square = Web <-> Hadoop flip every 2 s (hysteresis stress: gated\n"
      "dwell vs ungated).\n"
      "fct = aggregate completed-flow FCT; conv = conversions executed\n"
      "(committed); final = per-Pod terminal modes.");
  bench::print_row({"trace", "arm", "flows", "done", "fct", "mean_fct",
                    "conv", "final"},
                   13);

  const std::vector<Outcome> outcomes =
      runner.timed_stage("autopilot cells", [&] {
        return bench::parallel_replicates(
            runner.pool(), kCells, [&](std::size_t i) {
              const Cell& cell = cells[i];
              const Workload& flows = traces[cell.workload];
              switch (cell.kind) {
                case Arm::kAutopilot:
                  return run_autopilot(controller, flows, cell.duration_s,
                                       policy_defaults(), runner.seed(),
                                       runner.obs());
                case Arm::kStaticClos:
                  return run_static(controller, flows, cell.duration_s,
                                    PodMode::kClos, runner.obs());
                case Arm::kStaticLocal:
                  return run_static(controller, flows, cell.duration_s,
                                    PodMode::kLocal, runner.obs());
                case Arm::kStaticGlobal:
                  return run_static(controller, flows, cell.duration_s,
                                    PodMode::kGlobal, runner.obs());
                case Arm::kOracle:
                  return run_oracle(controller, flows, cell.duration_s,
                                    runner.obs());
                case Arm::kThrashHysteresis:
                  return run_autopilot(controller, flows, cell.duration_s,
                                       policy_defaults(), runner.seed(),
                                       runner.obs());
                case Arm::kThrashUngated: {
                  ReconfigPolicyOptions ungated = policy_defaults();
                  ungated.min_dwell_s = 0.0;
                  ungated.min_gain_frac = 0.0;
                  ungated.gain_cost_multiple = 0.0;
                  ungated.require_positive_gain = false;
                  return run_autopilot(controller, flows, cell.duration_s,
                                       ungated, runner.seed(), runner.obs());
                }
              }
              return Outcome{};
            });
      });

  double fct[3][8] = {};
  std::uint32_t conv[3][8] = {};
  for (std::size_t i = 0; i < kCells; ++i) {
    const Cell& cell = cells[i];
    const Outcome& out = outcomes[i];
    fct[cell.workload][static_cast<std::size_t>(cell.kind)] = out.fct_sum_s;
    conv[cell.workload][static_cast<std::size_t>(cell.kind)] =
        out.conversions;
    const double mean_fct =
        out.completed > 0
            ? out.fct_sum_s / static_cast<double>(out.completed)
            : 0.0;
    bench::print_row(
        {cell.trace, cell.arm, std::to_string(out.flows),
         std::to_string(out.completed), bench::fmt(out.fct_sum_s, 1),
         bench::fmt(mean_fct, 4),
         std::to_string(out.conversions) + "(" +
             std::to_string(out.committed) + ")",
         out.final_modes},
        13);
    exec::ResultRow row;
    row.set("trace", cell.trace)
        .set("arm", cell.arm)
        .set("flows", out.flows)
        .set("completed", out.completed)
        .set("fct_sum_s", out.fct_sum_s)
        .set("mean_fct_s", mean_fct)
        .set("conversions", out.conversions)
        .set("conversions_committed", out.committed)
        .set("decisions_convert", out.decisions_convert)
        .set("decisions_hold", out.holds)
        .set("final_modes", out.final_modes)
        .set("packet_pairs", out.packet_pairs)
        .set("packet_bytes", out.packet_bytes);
    runner.add_row(std::move(row));
  }

  const auto a = [&](std::size_t t, Arm k) {
    return fct[t][static_cast<std::size_t>(k)];
  };
  constexpr auto kRegimes =
      static_cast<std::uint32_t>(kDuration / (kSquarePeriod / 2.0));
  const std::uint32_t hyst_conv =
      conv[2][static_cast<std::size_t>(Arm::kThrashHysteresis)];
  const std::uint32_t ungated_conv =
      conv[2][static_cast<std::size_t>(Arm::kThrashUngated)];
  std::printf(
      "\nexpected shape: the closed loop tracks the demand shift — its\n"
      "aggregate FCT lands below BOTH static Clos and static global on the\n"
      "diurnal and churn traces, between the per-phase best static and the\n"
      "free-conversion oracle. Under the square-wave flip, hysteresis\n"
      "bounds conversions to at most one per demand regime (%u regimes);\n"
      "the ungated loop converts more (%u vs %u here), paying the\n"
      "conversion transients each flip.\n",
      kRegimes, ungated_conv, hyst_conv);
  for (std::size_t t = 0; t < 2; ++t) {
    if (!(a(t, Arm::kAutopilot) < a(t, Arm::kStaticClos)) ||
        !(a(t, Arm::kAutopilot) < a(t, Arm::kStaticGlobal))) {
      std::printf("WARNING: autopilot not below both statics on trace %zu\n",
                  t);
    }
  }
  if (hyst_conv > kRegimes) {
    std::printf("WARNING: hysteresis exceeded one conversion per regime\n");
  }
  if (ungated_conv < hyst_conv) {
    std::printf("WARNING: ungated loop converted less than hysteresis\n");
  }
}

}  // namespace
}  // namespace flattree

int main(int argc, char** argv) {
  flattree::run(argc, argv);
  return 0;
}
