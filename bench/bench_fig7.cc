// Figure 7: distribution of per-flow throughput under flat-tree global mode
// for the four synthetic traffic patterns — box statistics (p25, median,
// p75, whisker extremes, mean) for MPTCP (8 paths), LP average and LP
// minimum.
//
// The paper's shape: LP minimum gives every flow the identical rate (zero
// spread); LP average produces extreme spread (zeros and full-rate flows);
// MPTCP sits between — higher average than LP minimum with modest variance.
// Same downscaled topo-1 layout as bench_fig6 (full traffic patterns keep
// the fabric loaded; see that header for the scaling rationale).
#include <cstdio>
#include <string>

#include "bench/util.h"
#include "core/flat_tree.h"
#include "lp/mcf.h"
#include "topo/params.h"
#include "traffic/patterns.h"

namespace flattree {
namespace {

ClosParams topo1_mini() {
  return ClosParams{4, 2, 2, 4, 16, 4, 8, 4};  // as in bench_fig6
}

Workload make_traffic(int id, const ClosParams& clos, Rng& rng) {
  const std::uint32_t servers = clos.total_servers();
  const std::uint32_t per_pod = clos.servers_per_edge * clos.edge_per_pod;
  switch (id) {
    case 1: return permutation_traffic(servers, rng);
    case 2: return pod_stride_traffic(servers, per_pod);
    case 3: return hot_spot_traffic(servers, per_pod / 2);
    case 4: return many_to_many_traffic(servers, 8);
  }
  return {};
}

void print_box(const std::string& label, const std::vector<double>& rates) {
  std::vector<double> gbps;
  gbps.reserve(rates.size());
  for (double r : rates) gbps.push_back(r / 1e9);
  bench::print_row({label, bench::fmt(bench::percentile(gbps, 25)),
                    bench::fmt(bench::percentile(gbps, 50)),
                    bench::fmt(bench::percentile(gbps, 75)),
                    bench::fmt(bench::percentile(gbps, 1)),
                    bench::fmt(bench::percentile(gbps, 99)),
                    bench::fmt(bench::mean(gbps))},
                   12);
}

void run() {
  bench::print_header(
      "Figure 7: flow throughput distribution, flat-tree global mode (Gb/s)",
      "columns: p25 / median / p75 / p1 / p99 / mean. MPTCP uses 8 paths;\n"
      "full patterns on the downscaled topo-1 layout of bench_fig6.");
  const ClosParams clos = topo1_mini();
  const FlatTree tree{FlatTreeParams::defaults_for(clos)};
  const Graph g = tree.realize_uniform(PodMode::kGlobal);

  for (int traffic = 1; traffic <= 4; ++traffic) {
    Rng rng{static_cast<std::uint64_t>(traffic) * 131 + 3};
    const Workload flows = make_traffic(traffic, clos, rng);
    std::printf("\n--- traffic-%d (%zu flows) ---\n", traffic, flows.size());
    bench::print_row({"method", "p25", "median", "p75", "lo", "hi", "mean"},
                     12);
    const McfInstance instance = bench::mcf_for(g, flows, 8);
    print_box("MPTCP", solve_mptcp_model(instance).flow_rate);
    const McfResult lp_avg = solve_lp_avg(instance);
    if (lp_avg.feasible) print_box("LP-avg", lp_avg.flow_rate);
    const McfResult lp_min = solve_lp_min(instance);
    if (lp_min.feasible) print_box("LP-min", lp_min.flow_rate);
  }
  std::printf(
      "\npaper shape: LP-min flat (no spread), LP-avg extreme spread with\n"
      "zeros and full-rate flows, MPTCP in between with small variance.\n");
}

}  // namespace
}  // namespace flattree

int main() {
  flattree::run();
  return 0;
}
