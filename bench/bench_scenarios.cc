// The scenario battery: runs every scenario file it is pointed at through
// scenario::run_scenario and reports one row per scenario — aggregate and
// per-class FCT statistics, engine counters, and the SLO verdicts against
// the spec's "expect" self-check.
//
//   bench_scenarios <dir-or-file>... [--seed N] [--threads N] ...
//
// Directories expand to their *.json files in name order. Every file is
// parsed AND compiled before anything runs, so a malformed spec fails the
// whole battery up front with its "<file>:<line>:<col>: ..." diagnostic
// (exit 2) rather than after minutes of simulation. Scenarios fan across
// the pool; each cell's randomness comes from the seeds recorded in its
// file (never from --seed or scheduling), and rows print in file order —
// stdout and BENCH_scenarios.json are byte-identical for --threads 1/2/8
// (the golden_scenarios / obs_determinism_scenarios gates).
//
// Exit status: 0 = every scenario matched its "expect" verdict, 1 = at
// least one mismatch, 2 = bad usage or a rejected scenario file.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/util.h"
#include "scenario/runner.h"

namespace flattree {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> expand_paths(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  for (const std::string& arg : args) {
    if (fs::is_directory(arg)) {
      std::vector<std::string> dir_files;
      for (const fs::directory_entry& entry : fs::directory_iterator(arg)) {
        if (entry.path().extension() == ".json") {
          dir_files.push_back(entry.path().string());
        }
      }
      std::sort(dir_files.begin(), dir_files.end());
      if (dir_files.empty()) {
        std::fprintf(stderr, "bench_scenarios: no *.json files in %s\n",
                     arg.c_str());
        std::exit(2);
      }
      files.insert(files.end(), dir_files.begin(), dir_files.end());
    } else {
      files.push_back(arg);
    }
  }
  return files;
}

int run(int argc, char** argv) {
  std::vector<std::string> paths;
  std::vector<char*> flags{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-') {
      flags.push_back(argv[i]);
      // Every flag of parse_runner_options takes a value except --help.
      if (std::string_view{argv[i]} != "--help" &&
          std::string_view{argv[i]} != "-h" && i + 1 < argc) {
        flags.push_back(argv[++i]);
      }
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: bench_scenarios <scenario.json | dir>... "
                 "[--threads N] [--json-out PATH|none]\n"
                 "       [--metrics-out PATH] [--trace-out PATH]\n");
    return 2;
  }
  exec::ExperimentRunner runner{
      bench::parse_runner_options("scenarios", static_cast<int>(flags.size()),
                                  flags.data(), 1)};

  const std::vector<std::string> files = expand_paths(paths);
  std::vector<scenario::CompiledScenario> compiled;
  compiled.reserve(files.size());
  for (const std::string& file : files) {
    try {
      compiled.push_back(scenario::compile_scenario_file(file));
    } catch (const scenario::ScenarioError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }

  std::vector<scenario::ScenarioResult> results;
  runner.timed_stage("scenario battery", [&] {
    results = bench::parallel_replicates(
        runner.pool(), compiled.size(), [&](std::size_t i) {
          // pool = null: the battery is already parallel across scenarios;
          // the sharded engine runs its shards serially inside the cell.
          return scenario::run_scenario(
              compiled[i], scenario::RunOptions{nullptr, runner.obs()});
        });
  });

  bench::print_header(
      "Scenario battery (" + std::to_string(results.size()) + " scenarios)",
      "SLO verdicts per scenario; ok = verdict matches the spec's expect.");
  const auto print_cells = [](const std::vector<std::string>& cells) {
    std::printf("%-24s", cells[0].c_str());
    for (std::size_t i = 1; i < cells.size(); ++i) {
      std::printf("%-14s", cells[i].c_str());
    }
    std::printf("\n");
  };
  print_cells({"scenario", "engine", "flows", "done", "p99_fct_s",
               "worst_fct_s", "slos", "expect", "ok"});
  bool all_match = true;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const scenario::ScenarioResult& r = results[i];
    std::size_t slos_held = 0;
    for (const scenario::SloVerdict& v : r.slos) slos_held += v.pass;
    print_cells(
        {r.name, scenario::to_string(compiled[i].spec.sim.engine),
         std::to_string(r.aggregate.flows),
         std::to_string(r.aggregate.completed),
         bench::fmt(r.aggregate.p99_fct_s, 4),
         bench::fmt(r.aggregate.worst_fct_s, 4),
         std::to_string(slos_held) + "/" + std::to_string(r.slos.size()),
         compiled[i].spec.expect_pass ? "pass" : "fail",
         r.matches_expect ? "yes" : "NO"});
    runner.add_row(r.row);
    all_match = all_match && r.matches_expect;
  }
  if (!all_match) {
    std::fprintf(stderr,
                 "bench_scenarios: scenario verdict mismatch (see table)\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace flattree

int main(int argc, char** argv) { return flattree::run(argc, argv); }
