// Ablation (§3.4): server-distribution profiling — average server-pair path
// length of the global-mode topology as a function of (m, n), the numbers
// of 6-port and 4-port converter rows per edge column. The paper's
// profiling scheme picks the (m, n) minimizing this metric; this bench
// prints the whole grid so the sensitivity is visible.
#include <cstdio>

#include "bench/util.h"
#include "core/profiling.h"

namespace flattree {
namespace {

void sweep(const char* label, const ClosParams& clos) {
  const MnProfile profile = profile_mn(clos, WiringPattern::kPattern1);
  std::printf("\n--- %s ---\n", label);
  bench::print_row({"m", "n", "avg-server-hops", "avg-switch-hops"}, 18);
  for (const MnCandidate& c : profile.candidates) {
    bench::print_row({std::to_string(c.m), std::to_string(c.n),
                      bench::fmt(c.avg_server_pair_hops, 4),
                      bench::fmt(c.avg_switch_pair_hops, 4)},
                     18);
  }
  std::printf("best: m=%u n=%u avg=%.4f\n", profile.best.m, profile.best.n,
              profile.best.avg_server_pair_hops);
}

void run() {
  bench::print_header("Ablation: (m, n) profiling (§3.4)",
                      "global-mode average path length across the grid");
  sweep("testbed (h/r = 2)", ClosParams::testbed());
  sweep("topo-2 (h/r = 6)", ClosParams::topo2());
}

}  // namespace
}  // namespace flattree

int main() {
  flattree::run();
  return 0;
}
