// Ablation (§3.4): server-distribution profiling — average server-pair path
// length of the global-mode topology as a function of (m, n), the numbers
// of 6-port and 4-port converter rows per edge column. The paper's
// profiling scheme picks the (m, n) minimizing this metric; this bench
// prints the whole grid so the sensitivity is visible.
//
// Execution: each (m, n) cell realizes and profiles an independent
// topology, so profile_mn fans the grid across the exec pool; the sweep is
// bit-identical to serial for any --threads. Results land in
// BENCH_ablation_mn.json.
#include <cstdio>

#include "bench/util.h"
#include "core/profiling.h"

namespace flattree {
namespace {

void sweep(exec::ExperimentRunner& runner, const char* label,
           const ClosParams& clos) {
  const MnProfile profile = runner.timed_stage(
      std::string{"profile_mn "} + label, [&] {
        return profile_mn(clos, WiringPattern::kPattern1, 1, runner.pool());
      });
  std::printf("\n--- %s ---\n", label);
  bench::print_row({"m", "n", "avg-server-hops", "avg-switch-hops"}, 18);
  for (const MnCandidate& c : profile.candidates) {
    bench::print_row({std::to_string(c.m), std::to_string(c.n),
                      bench::fmt(c.avg_server_pair_hops, 4),
                      bench::fmt(c.avg_switch_pair_hops, 4)},
                     18);
    exec::ResultRow row;
    row.set("layout", label)
        .set("m", c.m)
        .set("n", c.n)
        .set("avg_server_pair_hops", c.avg_server_pair_hops)
        .set("avg_switch_pair_hops", c.avg_switch_pair_hops)
        .set("best", c.m == profile.best.m && c.n == profile.best.n);
    runner.add_row(std::move(row));
  }
  std::printf("best: m=%u n=%u avg=%.4f\n", profile.best.m, profile.best.n,
              profile.best.avg_server_pair_hops);
}

void run(int argc, char** argv) {
  exec::ExperimentRunner runner{
      bench::parse_runner_options("ablation_mn", argc, argv, 20170821)};
  bench::print_header("Ablation: (m, n) profiling (§3.4)",
                      "global-mode average path length across the grid");
  sweep(runner, "testbed (h/r = 2)", ClosParams::testbed());
  sweep(runner, "topo-2 (h/r = 6)", ClosParams::topo2());
}

}  // namespace
}  // namespace flattree

int main(int argc, char** argv) {
  flattree::run(argc, argv);
  return 0;
}
