// Ablation (§5.1): sensitivity of MPTCP throughput to k, the number of
// concurrent paths in k-shortest-path routing. The paper's finding: too
// small a k leaves links under-utilized; 8 paths suffice; larger k does not
// improve further.
#include <cstdio>

#include "bench/util.h"
#include "core/flat_tree.h"
#include "lp/mcf.h"
#include "topo/params.h"
#include "traffic/patterns.h"

namespace flattree {
namespace {

void run() {
  bench::print_header(
      "Ablation: throughput vs k (k-shortest-path fan-out)",
      "topo-2 global mode, permutation + pod-stride traffic;\n"
      "avg flow rate in Gb/s from the max-min fluid allocation.");

  const ClosParams clos = ClosParams::topo2();
  const FlatTree tree{FlatTreeParams::defaults_for(clos)};
  const Graph g = tree.realize_uniform(PodMode::kGlobal);

  Rng rng{77};
  const Workload permutation =
      bench::subsample(permutation_traffic(clos.total_servers(), rng), 256, 3);
  const Workload stride = bench::subsample(
      pod_stride_traffic(clos.total_servers(),
                         clos.servers_per_edge * clos.edge_per_pod),
      256, 4);

  bench::print_row({"k", "permutation", "pod-stride"}, 14);
  for (const std::uint32_t k : {1u, 2u, 4u, 8u, 12u, 16u}) {
    const double p =
        solve_max_min_fill(bench::mcf_for(g, permutation, k)).avg_rate;
    const double s = solve_max_min_fill(bench::mcf_for(g, stride, k)).avg_rate;
    bench::print_row({std::to_string(k), bench::fmt_gbps(p),
                      bench::fmt_gbps(s)},
                     14);
  }
  std::printf("\npaper shape: throughput saturates by k = 8.\n");
}

}  // namespace
}  // namespace flattree

int main() {
  flattree::run();
  return 0;
}
