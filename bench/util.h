// Shared helpers for the benchmark binaries: routing providers, workload ->
// LP-instance plumbing, statistics, and fixed-width table printing. Each
// bench binary reproduces one table or figure of the paper and prints the
// same rows/series the paper reports, plus the scaling notes from
// EXPERIMENTS.md.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "lp/throughput.h"
#include "net/capacity.h"
#include "net/graph.h"
#include "net/rng.h"
#include "routing/ecmp.h"
#include "routing/ksp.h"
#include "sim/fluid.h"
#include "traffic/flow.h"

namespace flattree::bench {

inline PathProvider ksp_provider(const Graph& g, std::uint32_t k) {
  auto cache = std::make_shared<PathCache>(g, k);
  return [cache](NodeId src, NodeId dst, std::uint32_t) {
    return cache->server_paths(src, dst);
  };
}

inline PathProvider ecmp_provider(const Graph& g, std::uint64_t seed = 0) {
  auto router = std::make_shared<EcmpRouter>(g, seed);
  return [router](NodeId src, NodeId dst, std::uint32_t flow) {
    return std::vector<Path>{router->flow_path(src, dst, flow)};
  };
}

// Builds the path-based MCF instance for a workload under k-shortest-path
// routing on `g`.
inline McfInstance mcf_for(const Graph& g, const Workload& flows,
                           std::uint32_t k) {
  const LogicalTopology topo{g};
  PathCache cache{g, k};
  std::vector<FlowPaths> flow_paths;
  flow_paths.reserve(flows.size());
  for (const Flow& f : flows) {
    flow_paths.push_back(FlowPaths{NodeId{f.src}, NodeId{f.dst},
                                   cache.server_paths(NodeId{f.src},
                                                      NodeId{f.dst})});
  }
  return build_mcf_instance(topo, flow_paths);
}

// Deterministically subsample a workload down to `count` flows.
inline Workload subsample(const Workload& flows, std::size_t count,
                          std::uint64_t seed) {
  if (flows.size() <= count) return flows;
  std::vector<std::uint32_t> index(flows.size());
  std::iota(index.begin(), index.end(), 0u);
  Rng rng{seed};
  shuffle(index, rng);
  Workload out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(flows[index[i]]);
  return out;
}

inline double mean(const std::vector<double>& v) {
  if (v.empty()) return 0;
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

inline double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] * (1 - frac) + v[hi] * frac;
}

inline void print_header(const std::string& title, const std::string& note) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("================================================================\n");
}

inline void print_row(const std::vector<std::string>& cells, int width = 14) {
  for (const std::string& cell : cells) {
    std::printf("%-*s", width, cell.c_str());
  }
  std::printf("\n");
}

inline std::string fmt(double value, int precision = 2) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

inline std::string fmt_gbps(double bps) { return fmt(bps / 1e9, 2); }

}  // namespace flattree::bench
