// Shared helpers for the benchmark binaries: routing providers, workload ->
// LP-instance plumbing, statistics, and fixed-width table printing. Each
// bench binary reproduces one table or figure of the paper and prints the
// same rows/series the paper reports, plus the scaling notes from
// EXPERIMENTS.md.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "exec/parallel.h"
#include "exec/pool.h"
#include "exec/results.h"
#include "exec/runner.h"
#include "lp/mcf.h"
#include "lp/throughput.h"
#include "net/capacity.h"
#include "net/graph.h"
#include "net/rng.h"
#include "routing/ecmp.h"
#include "routing/ksp.h"
#include "sim/fluid.h"
#include "traffic/flow.h"

namespace flattree::bench {

// Minimal shared CLI for bench binaries: --seed N, --threads N (0 = one
// per core), --json-out PATH|none, --metrics-out PATH, --trace-out PATH.
// `default_seed` preserves each bench's historical constant so a bare run
// reproduces the numbers recorded in EXPERIMENTS.md byte-for-byte.
inline exec::RunnerOptions parse_runner_options(const char* bench_name,
                                                int argc, char** argv,
                                                std::uint64_t default_seed) {
  exec::RunnerOptions options;
  options.name = bench_name;
  options.seed = default_seed;
  const auto usage = [&](int exit_code) {
    std::fprintf(stderr,
                 "usage: %s [--seed N] [--threads N] [--json-out PATH|none]\n"
                 "          [--metrics-out PATH] [--trace-out PATH]\n"
                 "  --seed N         workload/topology sampling seed "
                 "(default %llu)\n"
                 "  --threads N      worker threads; 0 = one per core "
                 "(default 0)\n"
                 "  --json-out P     BENCH_%s.json destination: a file, a "
                 "directory ending in '/', or 'none' (default: ./)\n"
                 "  --metrics-out P  deterministic metrics JSON (also folded "
                 "into the BENCH json); off by default\n"
                 "  --trace-out P    Chrome trace_event JSON for "
                 "chrome://tracing / ui.perfetto.dev; off by default\n",
                 bench_name,
                 static_cast<unsigned long long>(default_seed), bench_name);
    std::exit(exit_code);
  };
  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", bench_name,
                     argv[i]);
        usage(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--seed") == 0) {
      options.seed = std::strtoull(value(), nullptr, 0);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      options.threads = static_cast<std::uint32_t>(
          std::strtoul(value(), nullptr, 0));
    } else if (std::strcmp(argv[i], "--json-out") == 0) {
      options.json_out = value();
    } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
      options.metrics_out = value();
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      options.trace_out = value();
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      usage(0);
    } else {
      std::fprintf(stderr, "%s: unknown argument %s\n", bench_name, argv[i]);
      usage(2);
    }
  }
  return options;
}

inline PathProvider ksp_provider(const Graph& g, std::uint32_t k,
                                 const obs::ObsSink& sink = {}) {
  auto cache = std::make_shared<PathCache>(g, k);
  cache->attach_obs(sink);
  return [cache](NodeId src, NodeId dst, std::uint32_t) {
    return cache->server_paths(src, dst);
  };
}

inline PathProvider ecmp_provider(const Graph& g, std::uint64_t seed = 0) {
  auto router = std::make_shared<EcmpRouter>(g, seed);
  return [router](NodeId src, NodeId dst, std::uint32_t flow) {
    return std::vector<Path>{router->flow_path(src, dst, flow)};
  };
}

// Warms `cache` with every switch pair `flows` touches, fanning the Yen's
// runs across `pool` (serial when null).
inline void warm_cache(PathCache& cache, const Workload& flows,
                       exec::ThreadPool* pool) {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(flows.size());
  for (const Flow& f : flows) {
    pairs.emplace_back(NodeId{f.src}, NodeId{f.dst});
  }
  cache.precompute(pairs, pool);
}

// Builds the path-based MCF instance for a workload under k-shortest-path
// routing on `g`. The KSP precompute — the hot stage — fans across `pool`.
inline McfInstance mcf_for(const Graph& g, const Workload& flows,
                           std::uint32_t k,
                           exec::ThreadPool* pool = nullptr,
                           const obs::ObsSink& sink = {}) {
  const LogicalTopology topo{g};
  PathCache cache{g, k};
  cache.attach_obs(sink);
  warm_cache(cache, flows, pool);
  std::vector<FlowPaths> flow_paths;
  flow_paths.reserve(flows.size());
  for (const Flow& f : flows) {
    flow_paths.push_back(FlowPaths{NodeId{f.src}, NodeId{f.dst},
                                   cache.server_paths(NodeId{f.src},
                                                      NodeId{f.dst})});
  }
  return build_mcf_instance(topo, flow_paths);
}

// Fabric-throughput MCF (the Jellyfish methodology the paper follows, used
// by the Table-1-style throughput comparisons): switch-switch edges are
// capacity constraints; server access links are not shared resources —
// instead every flow is individually capped at the line rate by a private
// per-commodity edge. This measures what the *fabric* can sustain, which
// is what distinguishes the architectures.
inline McfInstance fabric_mcf(const Graph& g, const Workload& flows,
                              std::uint32_t k,
                              exec::ThreadPool* pool = nullptr,
                              const obs::ObsSink& sink = {}) {
  const LogicalTopology topo{g};
  PathCache cache{g, k};
  cache.attach_obs(sink);
  warm_cache(cache, flows, pool);
  McfInstance instance;
  std::unordered_map<std::uint32_t, std::uint32_t> edge_row;
  const auto row_for = [&](std::uint32_t directed) {
    const auto [it, inserted] = edge_row.try_emplace(
        directed, static_cast<std::uint32_t>(instance.capacity.size()));
    if (inserted) instance.capacity.push_back(topo.capacity(directed));
    return it->second;
  };
  for (const Flow& f : flows) {
    McfCommodity commodity;
    // Private line-rate cap shared by all of this flow's paths.
    const std::uint32_t cap_row =
        static_cast<std::uint32_t>(instance.capacity.size());
    instance.capacity.push_back(10e9);
    for (const Path& path :
         cache.server_paths(NodeId{f.src}, NodeId{f.dst})) {
      std::vector<std::uint32_t> rows{cap_row};
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        // Skip server access hops: only the switch fabric is shared.
        if (!is_switch(g.node(path[i]).role) ||
            !is_switch(g.node(path[i + 1]).role)) {
          continue;
        }
        rows.push_back(row_for(topo.directed_index(path[i], path[i + 1])));
      }
      commodity.paths.push_back(std::move(rows));
    }
    instance.commodities.push_back(std::move(commodity));
  }
  return instance;
}

// Runs `n` independent experiment replicates across the pool; replicate i
// computes fn(i) (deriving any randomness from a deterministic per-index
// stream, e.g. exec::task_rng(seed, i)). Results come back in index order,
// bit-identical for any thread count.
template <typename Fn>
[[nodiscard]] auto parallel_replicates(exec::ThreadPool* pool, std::size_t n,
                                       Fn&& fn) {
  return exec::parallel_map(pool, n, std::forward<Fn>(fn));
}

// Deterministically subsample a workload down to `count` flows.
inline Workload subsample(const Workload& flows, std::size_t count,
                          std::uint64_t seed) {
  if (flows.size() <= count) return flows;
  std::vector<std::uint32_t> index(flows.size());
  std::iota(index.begin(), index.end(), 0u);
  Rng rng{seed};
  shuffle(index, rng);
  Workload out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(flows[index[i]]);
  return out;
}

inline double mean(const std::vector<double>& v) {
  if (v.empty()) return 0;
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

inline double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] * (1 - frac) + v[hi] * frac;
}

inline void print_header(const std::string& title, const std::string& note) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("================================================================\n");
}

inline void print_row(const std::vector<std::string>& cells, int width = 14) {
  for (const std::string& cell : cells) {
    std::printf("%-*s", width, cell.c_str());
  }
  std::printf("\n");
}

inline std::string fmt(double value, int precision = 2) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

inline std::string fmt_gbps(double bps) { return fmt(bps / 1e9, 2); }

}  // namespace flattree::bench
