// Incremental max-min allocator vs from-scratch solve_max_min_fill, plus
// warm PathCache rebinds vs cold recompute — the two delta disciplines of
// the fluid hot path (src/sim/fluid_incremental.h, PathCache::rebind_warm).
//
// Each fluid cell drives one deterministic event stream (k x event mix)
// through both allocators in lockstep, asserting bit-for-bit rate equality
// after every event (the bench aborts on divergence — it is its own
// differential oracle), and reports the incremental path's touch counts:
// links_touched / directed edges is the O(affected) contract, pinned by the
// --baseline gate so a regression to O(network) re-solves fails CI even
// when wall-clock noise hides it.
//
// Event mixes:
//   churn    sparse flow arrival/departure on reserved quiet pairs over a
//            steady permutation background — the incremental sweet spot
//            (events join existing bottleneck levels; no fallback).
//   failure  fabric link fail/recover flaps — adversarial: a zeroed
//            capacity undercuts every cached level, so most events fall
//            back to a (trace-recording) full re-solve; the win here is
//            only the avoided per-event instance rebuild.
//   mixed    3:1 interleave of the two.
//
// Output discipline: stdout and BENCH_fluid_incremental.json are a pure
// function of --seed; perf (wall, events/sec, speedup) goes to stderr.
//
// Flags beyond the shared runner set:
//   --quick           k = 4 cells only (CI determinism + perf-smoke gates)
//   --baseline PATH   assert k4/churn incremental events/sec >= baseline/2
//                     (best of 3) AND k4/churn links_touched fraction <=
//                     the pinned max (exact — the fraction is
//                     deterministic). tests/golden/fluid_incremental_baseline.json
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/util.h"
#include "lp/mcf.h"
#include "net/capacity.h"
#include "net/failures.h"
#include "net/rng.h"
#include "routing/ksp.h"
#include "sim/fluid_incremental.h"
#include "topo/clos.h"

namespace flattree {
namespace {

struct BenchOptions {
  bool quick{false};
  std::string baseline_path;
};

using PathEdges = std::vector<std::vector<std::uint32_t>>;

enum class Op : std::uint8_t { kAdd, kRemove, kFail, kRecover };

struct Event {
  Op op{Op::kAdd};
  std::uint32_t slot{0};       // kAdd/kRemove
  std::uint32_t edge{0};       // kFail/kRecover (undirected)
  const PathEdges* paths{nullptr};
};

struct CellSpec {
  std::uint32_t k{4};
  const char* mix{"churn"};
};

struct CellResult {
  std::uint32_t k{0};
  std::string mix;
  std::size_t events{0};
  std::size_t directed_edges{0};
  std::uint64_t links_touched{0};
  std::uint64_t flows_touched{0};
  std::uint64_t full_resolves{0};
  double inc_wall_s{0.0};
  double scratch_wall_s{0.0};
  bool exact{true};
  [[nodiscard]] double links_frac() const {
    return static_cast<double>(links_touched) /
           (static_cast<double>(events) *
            static_cast<double>(directed_edges));
  }
};

// The deterministic world a cell drives: a warm background allocation plus
// a pre-generated event stream with resolved path sets.
struct CellWorld {
  std::vector<double> base_capacity;       // directed
  std::size_t slots{0};
  std::vector<std::pair<std::uint32_t, const PathEdges*>> background;
  std::vector<Event> events;
  std::vector<std::unique_ptr<PathEdges>> owned;
};

const PathEdges* resolve(CellWorld& w, const LogicalTopology& topo,
                         PathCache& cache, NodeId src, NodeId dst) {
  auto pe = std::make_unique<PathEdges>();
  for (const Path& p : cache.server_paths(src, dst)) {
    pe->push_back(topo.path_edges(p));
  }
  w.owned.push_back(std::move(pe));
  return w.owned.back().get();
}

CellWorld build_world(const Graph& g, const CellSpec& spec,
                      std::uint64_t seed, std::size_t num_events) {
  const LogicalTopology topo{g};
  PathCache cache{g, 4};
  CellWorld w;
  w.base_capacity.resize(topo.directed_count());
  for (std::size_t e = 0; e < w.base_capacity.size(); ++e) {
    w.base_capacity[e] = topo.capacity(static_cast<std::uint32_t>(e));
  }

  std::vector<NodeId> servers;
  for (std::uint32_t i = 0; i < g.node_count(); ++i) {
    if (!is_switch(g.node(NodeId{i}).role)) servers.push_back(NodeId{i});
  }
  // Last 8 servers are reserved churn endpoints (quiet access edges);
  // the rest carry a steady random permutation background.
  constexpr std::size_t kChurnServers = 8;
  const std::size_t bg_n = servers.size() - kChurnServers;
  Rng rng{seed};
  std::vector<std::uint32_t> perm(bg_n);
  for (std::size_t i = 0; i < bg_n; ++i) {
    perm[i] = static_cast<std::uint32_t>(i);
  }
  shuffle(perm, rng);
  std::uint32_t slot = 0;
  for (std::size_t i = 0; i < bg_n; ++i) {
    if (perm[i] == i) continue;
    w.background.emplace_back(
        slot++, resolve(w, topo, cache, servers[i], servers[perm[i]]));
  }
  // Churn flows: disjoint pairs of the reserved servers. They are part of
  // the initial allocation (the event stream starts by removing one), so
  // they also join the background list.
  std::vector<std::pair<std::uint32_t, const PathEdges*>> churn;
  for (std::size_t i = 0; i < kChurnServers / 2; ++i) {
    // Pair i with i + 4: the reserved block spans several edge switches, so
    // these are multi-hop, multi-path flows, not same-switch shortcuts.
    churn.emplace_back(
        slot++, resolve(w, topo, cache, servers[bg_n + i],
                        servers[bg_n + i + kChurnServers / 2]));
    w.background.push_back(churn.back());
  }
  w.slots = slot;

  // Flappable fabric edges: undirected logical edges between switches.
  std::vector<std::uint32_t> fabric;
  for (std::uint32_t i = 0; i < g.link_count(); ++i) {
    const Link& l = g.link(LinkId{i});
    if (is_switch(g.node(l.a).role) && is_switch(g.node(l.b).role)) {
      fabric.push_back(*topo.edge_between(l.a, l.b));
    }
  }

  const bool churn_mix = std::strcmp(spec.mix, "churn") == 0;
  const bool failure_mix = std::strcmp(spec.mix, "failure") == 0;
  std::size_t ci = 0;   // churn cursor (even = remove, odd = re-add)
  std::size_t fi = 0;   // fabric cursor (even = fail, odd = recover)
  for (std::size_t ev = 0; ev < num_events; ++ev) {
    const bool do_churn = churn_mix || (!failure_mix && ev % 4 != 3);
    Event e;
    if (do_churn) {
      const auto& [cslot, paths] = churn[(ci / 2) % churn.size()];
      e.op = (ci % 2 == 0) ? Op::kRemove : Op::kAdd;
      e.slot = cslot;
      e.paths = paths;
      ++ci;
    } else {
      e.op = (fi % 2 == 0) ? Op::kFail : Op::kRecover;
      e.edge = fabric[(fi / 2 * 7) % fabric.size()];
      ++fi;
    }
    w.events.push_back(e);
  }
  return w;
}

// From-scratch oracle state: capacities + present flows, solved by
// rebuilding an McfInstance per event exactly as the legacy fluid
// reallocate() does.
struct ScratchState {
  std::vector<double> capacity;
  std::vector<const PathEdges*> flows;  // slot -> paths (null = absent)

  std::vector<std::pair<std::uint32_t, double>> solve() const {
    McfInstance instance;
    instance.capacity = capacity;
    std::vector<std::uint32_t> order;
    for (std::uint32_t s = 0; s < flows.size(); ++s) {
      if (flows[s] == nullptr) continue;
      McfCommodity commodity;
      commodity.paths = *flows[s];
      instance.commodities.push_back(std::move(commodity));
      order.push_back(s);
    }
    std::vector<std::pair<std::uint32_t, double>> out;
    if (order.empty()) return out;
    const std::vector<double> solved = solve_max_min_fill(instance).flow_rate;
    out.reserve(order.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      out.emplace_back(order[i], solved[i]);
    }
    return out;
  }
};

bool bits_equal(double a, double b) {
  std::uint64_t x = 0;
  std::uint64_t y = 0;
  std::memcpy(&x, &a, sizeof(x));
  std::memcpy(&y, &b, sizeof(y));
  return x == y;
}

CellResult run_cell(const Graph& g, const CellSpec& spec,
                    std::uint64_t seed, std::size_t num_events) {
  CellWorld w = build_world(g, spec, seed, num_events);
  CellResult r;
  r.k = spec.k;
  r.mix = spec.mix;
  r.events = w.events.size();
  r.directed_edges = w.base_capacity.size();

  IncrementalMaxMinSolver inc;
  inc.reset(w.base_capacity, w.slots);
  ScratchState scratch;
  scratch.capacity = w.base_capacity;
  scratch.flows.assign(w.slots, nullptr);
  for (const auto& [slot, paths] : w.background) {
    inc.add_flow(slot, *paths);
    scratch.flows[slot] = paths;
  }
  inc.solve();  // warm allocation; not timed, not an event

  using Clock = std::chrono::steady_clock;
  for (const Event& e : w.events) {
    switch (e.op) {
      case Op::kAdd:
        inc.add_flow(e.slot, *e.paths);
        scratch.flows[e.slot] = e.paths;
        break;
      case Op::kRemove:
        inc.remove_flow(e.slot);
        scratch.flows[e.slot] = nullptr;
        break;
      case Op::kFail:
      case Op::kRecover: {
        const bool fail = e.op == Op::kFail;
        for (const std::uint32_t d : {2 * e.edge, 2 * e.edge + 1}) {
          const double v = fail ? 0.0 : w.base_capacity[d];
          inc.set_capacity(d, v);
          scratch.capacity[d] = v;
        }
        break;
      }
    }
    const auto t0 = Clock::now();
    inc.solve();
    const auto t1 = Clock::now();
    const auto expect = scratch.solve();
    const auto t2 = Clock::now();
    r.inc_wall_s += std::chrono::duration<double>(t1 - t0).count();
    r.scratch_wall_s += std::chrono::duration<double>(t2 - t1).count();
    const IncrementalSolveStats& st = inc.last_stats();
    r.links_touched += st.links_touched;
    r.flows_touched += st.flows_touched;
    if (st.full_resolve) ++r.full_resolves;
    for (const auto& [slot, rate] : expect) {
      if (!bits_equal(inc.flow_rate(slot), rate)) r.exact = false;
    }
  }
  return r;
}

// Warm PathCache rebinds vs cold all-pair recompute under fabric flaps —
// the routing half of the delta discipline. Exactness is asserted inline
// (warm path sets must equal cold per pair); wall times go to stderr.
struct KspCellResult {
  std::size_t pairs{0};
  std::size_t flaps{0};
  std::uint64_t evicted{0};
  double warm_wall_s{0.0};
  double cold_wall_s{0.0};
  bool exact{true};
};

KspCellResult run_ksp_cell(const Graph& base, std::uint64_t seed) {
  std::vector<NodeId> switches;
  for (std::uint32_t i = 0; i < base.node_count(); ++i) {
    if (is_switch(base.node(NodeId{i}).role)) switches.push_back(NodeId{i});
  }
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (const NodeId a : switches) {
    for (const NodeId b : switches) {
      if (a != b) pairs.emplace_back(a, b);
    }
  }
  std::vector<LinkId> fabric;
  for (std::uint32_t i = 0; i < base.link_count(); ++i) {
    const Link& l = base.link(LinkId{i});
    if (is_switch(base.node(l.a).role) && is_switch(base.node(l.b).role)) {
      fabric.push_back(LinkId{i});
    }
  }

  KspCellResult r;
  r.pairs = pairs.size();
  r.flaps = 12;
  PathCache warm{base, 4};
  for (const auto& [a, b] : pairs) (void)warm.switch_paths(a, b);

  Rng rng{seed};
  std::vector<bool> down(base.link_count(), false);
  std::vector<std::unique_ptr<Graph>> alive;
  using Clock = std::chrono::steady_clock;
  for (std::size_t step = 0; step < r.flaps; ++step) {
    const LinkId flip = fabric[rng.next_below(fabric.size())];
    down[flip.index()] = !down[flip.index()];
    std::vector<LinkId> removed;
    for (std::uint32_t i = 0; i < base.link_count(); ++i) {
      if (down[i]) removed.push_back(LinkId{i});
    }
    alive.push_back(std::make_unique<Graph>(remove_links(base, removed)));
    const Graph& g = *alive.back();

    const auto t0 = Clock::now();
    r.evicted += warm.rebind_warm(g);
    for (const auto& [a, b] : pairs) (void)warm.switch_paths(a, b);
    const auto t1 = Clock::now();
    PathCache cold{g, 4};
    for (const auto& [a, b] : pairs) (void)cold.switch_paths(a, b);
    const auto t2 = Clock::now();
    r.warm_wall_s += std::chrono::duration<double>(t1 - t0).count();
    r.cold_wall_s += std::chrono::duration<double>(t2 - t1).count();
    for (const auto& [a, b] : pairs) {
      if (warm.switch_paths(a, b) != cold.switch_paths(a, b)) {
        r.exact = false;
      }
    }
  }
  return r;
}

// Flat baseline JSON: {"k4_churn_events_per_sec": N,
//                      "k4_churn_links_frac_max": F}
double read_baseline_field(const std::string& text, const char* name) {
  const std::string key = std::string{"\""} + name + "\"";
  const std::size_t at = text.find(key);
  if (at == std::string::npos) {
    std::fprintf(stderr, "fluid_incremental: baseline lacks %s\n", name);
    std::exit(2);
  }
  const std::size_t colon = text.find(':', at);
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

int run(const BenchOptions& bench, exec::RunnerOptions options) {
  exec::ExperimentRunner runner{std::move(options)};

  // k=8 churn is always present: it is the gate cell (--baseline), large
  // enough for the links_frac << 1 contract to have teeth.
  std::vector<CellSpec> specs = {
      {4, "churn"}, {4, "failure"}, {4, "mixed"}, {8, "churn"}};
  if (!bench.quick) {
    specs.push_back({8, "failure"});
    specs.push_back({8, "mixed"});
  }

  bench::print_header(
      "Incremental max-min reallocation vs from-scratch progressive filling",
      "Event streams (sparse churn / fabric flaps / mixed) solved by both\n"
      "allocators in lockstep; rates asserted bit-identical per event.\n"
      "links_frac = links touched per event / directed edges (O(affected)\n"
      "contract). Wall-clock and speedup on stderr; stdout is\n"
      "seed-deterministic.");
  bench::print_row({"k", "mix", "events", "full_resolves", "links/event",
                    "links_frac", "exact"},
                   13);

  const auto cell_events = [&](const CellSpec& s) {
    return static_cast<std::size_t>(s.k == 4 ? 1200 : 400);
  };
  const std::vector<CellResult> results = runner.timed_stage(
      "fluid_incremental cells", [&] {
        return bench::parallel_replicates(
            runner.pool(), specs.size(), [&](std::size_t i) {
              const CellSpec& spec = specs[i];
              const Graph g = build_clos(ClosParams::fat_tree(spec.k));
              return run_cell(g, spec, mix64(runner.seed(), i),
                              cell_events(spec));
            });
      });

  bool all_exact = true;
  double gate_events_per_sec = 0.0;
  double gate_links_frac = 0.0;
  if (obs::MetricsRegistry* reg = runner.obs().metrics()) {
    // Mirror the fluid simulator's touch counters so the obs-determinism
    // gate pins them across thread counts.
    std::uint64_t links = 0;
    std::uint64_t flows = 0;
    std::uint64_t full = 0;
    std::uint64_t events = 0;
    for (const CellResult& r : results) {
      links += r.links_touched;
      flows += r.flows_touched;
      full += r.full_resolves;
      events += r.events;
    }
    reg->counter("fluid.realloc.links_touched").add(links);
    reg->counter("fluid.realloc.flows_touched").add(flows);
    reg->counter("fluid.realloc.full_resolves").add(full);
    reg->counter("bench.fluid_inc.events").add(events);
  }
  for (const CellResult& r : results) {
    const double links_per_event =
        static_cast<double>(r.links_touched) /
        static_cast<double>(r.events);
    bench::print_row(
        {std::to_string(r.k), r.mix, std::to_string(r.events),
         std::to_string(r.full_resolves), bench::fmt(links_per_event, 1),
         bench::fmt(r.links_frac(), 4), r.exact ? "yes" : "NO"},
        13);
    std::fprintf(stderr,
                 "[perf] k=%u %s inc=%.3fs (%.3e ev/s) scratch=%.3fs "
                 "(%.3e ev/s) speedup=%.2fx\n",
                 r.k, r.mix.c_str(), r.inc_wall_s,
                 static_cast<double>(r.events) / r.inc_wall_s,
                 r.scratch_wall_s,
                 static_cast<double>(r.events) / r.scratch_wall_s,
                 r.scratch_wall_s / r.inc_wall_s);
    all_exact = all_exact && r.exact;
    if (r.k == 8 && r.mix == "churn") {
      gate_events_per_sec =
          static_cast<double>(r.events) / r.inc_wall_s;
      gate_links_frac = r.links_frac();
    }
    exec::ResultRow row;
    row.set("k", r.k)
        .set("mix", r.mix)
        .set("events", r.events)
        .set("directed_edges", r.directed_edges)
        .set("full_resolves", r.full_resolves)
        .set("links_touched", r.links_touched)
        .set("flows_touched", r.flows_touched)
        .set("links_frac", r.links_frac())
        .set("exact", r.exact ? 1 : 0);
    runner.add_row(std::move(row));
  }

  // Routing half: warm rebinds against cold recompute.
  const KspCellResult ksp = runner.timed_stage(
      "ksp warm rebinds",
      [&] {
        return run_ksp_cell(build_clos(ClosParams::fat_tree(4)),
                            mix64(runner.seed(), 97));
      });
  bench::print_row({"4", "ksp_flaps", std::to_string(ksp.flaps),
                    std::to_string(ksp.evicted),
                    std::to_string(ksp.pairs) + " pairs",
                    bench::fmt(static_cast<double>(ksp.evicted) /
                                   (static_cast<double>(ksp.flaps) *
                                    static_cast<double>(ksp.pairs)),
                               4),
                    ksp.exact ? "yes" : "NO"},
                   13);
  std::fprintf(stderr,
               "[perf] ksp warm=%.3fs cold=%.3fs speedup=%.2fx "
               "(evicted %llu of %zu pair-steps)\n",
               ksp.warm_wall_s, ksp.cold_wall_s,
               ksp.cold_wall_s / ksp.warm_wall_s,
               static_cast<unsigned long long>(ksp.evicted),
               ksp.flaps * ksp.pairs);
  all_exact = all_exact && ksp.exact;
  if (obs::MetricsRegistry* reg = runner.obs().metrics()) {
    reg->counter("bench.fluid_inc.ksp_evicted").add(ksp.evicted);
  }
  {
    exec::ResultRow row;
    row.set("k", 4)
        .set("mix", "ksp_flaps")
        .set("events", ksp.flaps)
        .set("pairs", ksp.pairs)
        .set("evicted", ksp.evicted)
        .set("exact", ksp.exact ? 1 : 0);
    runner.add_row(std::move(row));
  }

  if (!all_exact) {
    std::fprintf(stderr,
                 "fluid_incremental: EXACTNESS FAILURE — incremental "
                 "diverged from scratch\n");
    return 1;
  }

  if (!bench.baseline_path.empty()) {
    std::ifstream in{bench.baseline_path};
    if (!in) {
      std::fprintf(stderr, "fluid_incremental: cannot open baseline %s\n",
                   bench.baseline_path.c_str());
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    const double base_eps =
        read_baseline_field(text, "k8_churn_events_per_sec");
    const double frac_max =
        read_baseline_field(text, "k8_churn_links_frac_max");
    // Wall-clock half: best of three re-runs, 2x slack (catches
    // order-of-magnitude regressions, not machine noise). The gate cell's
    // spec index is 3 in both quick and full mode, so the re-run replays
    // the identical stream.
    double best = gate_events_per_sec;
    for (int rep = 0; rep < 3; ++rep) {
      const Graph g = build_clos(ClosParams::fat_tree(8));
      const CellResult again =
          run_cell(g, CellSpec{8, "churn"}, mix64(runner.seed(), 3), 400);
      const double eps =
          static_cast<double>(again.events) / again.inc_wall_s;
      if (eps > best) best = eps;
    }
    if (best < base_eps / 2) {
      std::fprintf(stderr,
                   "fluid_incremental: PERF REGRESSION churn k=8 %.3e "
                   "events/sec < baseline %.3e / 2\n",
                   best, base_eps);
      return 1;
    }
    // Touch half: exact (the fraction is a pure function of the seed). A
    // regression to O(network) re-solves trips this even if the machine
    // is fast enough to hide it.
    if (gate_links_frac > frac_max) {
      std::fprintf(stderr,
                   "fluid_incremental: TOUCH REGRESSION churn k=8 "
                   "links_frac %.4f > pinned max %.4f\n",
                   gate_links_frac, frac_max);
      return 1;
    }
    std::fprintf(stderr,
                 "[perf] churn k=8 %.3e events/sec >= baseline %.3e / 2, "
                 "links_frac %.4f <= %.4f: ok\n",
                 best, base_eps, gate_links_frac, frac_max);
  }
  return runner.write() ? 0 : 1;
}

}  // namespace
}  // namespace flattree

int main(int argc, char** argv) {
  flattree::BenchOptions bench;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      bench.quick = true;
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      bench.baseline_path = argv[++i];
    } else {
      rest.push_back(argv[i]);
    }
  }
  const auto options = flattree::bench::parse_runner_options(
      "fluid_incremental", static_cast<int>(rest.size()), rest.data(),
      20170821);
  return flattree::run(bench, options);
}
