// Packet-engine scaling sweep: k-ary fat-tree flat-tree fabrics (flat-tree
// realization in Clos mode) at k = 8, 16, 32, driven by ShardedPacketSim —
// one shard per Pod, intra-pod permutation traffic, so shards are
// link-disjoint and the sharded run is event-for-event identical to a
// monolithic simulation of the same workload (see src/sim/sharded.h).
//
// Output discipline: stdout and BENCH_packet_scale.json are a pure function
// of --seed (shard count is pods, never the thread count), so runs with
// --threads 1/2/8 are byte-identical. Perf observations — events/sec, wall
// time, peak RSS — go to stderr only, like the runner's stage timings.
//
// Flags beyond the shared runner set:
//   --quick               k = 8 only (the CI determinism + perf-smoke gates)
//   --baseline PATH       assert k=8 events/sec >= baseline/2 (perf smoke;
//                         baseline JSON: tests/golden/packet_scale_baseline.json)
//   --compare-reference   also run the k=8 workload monolithically on both
//                         engines, serial, and report the speedup (stderr)
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/util.h"
#include "core/flat_tree.h"
#include "sim/packet.h"
#include "sim/sharded.h"
#include "topo/params.h"

namespace flattree {
namespace {

struct ScaleOptions {
  bool quick{false};
  bool compare_reference{false};
  std::string baseline_path;
};

double peak_rss_mib() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB
}

Graph build_fabric(std::uint32_t k) {
  ClosParams clos = ClosParams::fat_tree(k);
  clos.link_bps = 100e6;  // scaled from 10G to keep event counts tractable
  FlatTreeParams params = FlatTreeParams::defaults_for(clos);
  params.clos.link_bps = clos.link_bps;
  return FlatTree{params}.realize_uniform(PodMode::kClos);
}

// Intra-pod permutation: every server sends one finite flow to a
// shuffled same-pod peer. Paths stay inside the pod (shortest intra-pod
// routes never climb to the core), which is what makes per-pod shards
// link-disjoint.
void add_pod_flows(PacketSim& sim, PathCache& cache, const ClosParams& clos,
                   std::uint32_t pod, Rng& rng) {
  const std::uint32_t per_pod = clos.edge_per_pod * clos.servers_per_edge;
  std::vector<std::uint32_t> dst(per_pod);
  for (std::uint32_t i = 0; i < per_pod; ++i) dst[i] = pod * per_pod + i;
  shuffle(dst, rng);
  for (std::uint32_t i = 0; i < per_pod; ++i) {
    const std::uint32_t src = pod * per_pod + i;
    if (dst[i] == src) continue;
    const double bytes = 1e5 + rng.next_double() * 3e5;
    sim.add_flow(src, dst[i], bytes, rng.next_double() * 0.05,
                 cache.server_paths(NodeId{src}, NodeId{dst[i]}));
  }
}

constexpr double kHorizonS = 2.0;

struct SweepPoint {
  std::uint32_t k;
  ShardedRunStats stats;
  double wall_s;
};

SweepPoint run_point(std::uint32_t k, exec::ExperimentRunner& runner) {
  const Graph g = build_fabric(k);
  ClosParams clos = ClosParams::fat_tree(k);
  clos.link_bps = 100e6;
  ShardedPacketSim sharded{g, PacketSimOptions{}, runner.seed()};
  const auto t0 = std::chrono::steady_clock::now();
  ShardedRunStats stats = sharded.run(
      clos.pods,
      [&](std::uint32_t pod, PacketSim& sim, Rng& rng) {
        PathCache cache{g, 1};
        add_pod_flows(sim, cache, clos, pod, rng);
      },
      kHorizonS, runner.pool(), runner.obs());
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return SweepPoint{k, std::move(stats), wall};
}

// Monolithic single-simulator run of the k-fabric workload on one engine;
// used by --compare-reference to measure the pooled engine against the
// legacy priority-queue engine on identical event streams.
std::pair<std::uint64_t, double> run_monolithic(std::uint32_t k,
                                                PacketEngine engine,
                                                std::uint64_t seed) {
  const Graph g = build_fabric(k);
  ClosParams clos = ClosParams::fat_tree(k);
  clos.link_bps = 100e6;
  PacketSimOptions options;
  options.engine = engine;
  PacketSim sim{options};
  sim.set_network(g);
  PathCache cache{g, 1};
  for (std::uint32_t pod = 0; pod < clos.pods; ++pod) {
    Rng rng = exec::task_rng(seed, pod);
    add_pod_flows(sim, cache, clos, pod, rng);
  }
  const auto t0 = std::chrono::steady_clock::now();
  sim.run_until(kHorizonS);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return {sim.events_processed(), wall};
}

// Reads "events_per_sec" for the k=8 row out of the pinned baseline JSON.
// The file is flat enough ({"k8_events_per_sec": N}) that a string scan is
// all the parsing needed.
double read_baseline(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    std::fprintf(stderr, "packet_scale: cannot open baseline %s\n",
                 path.c_str());
    std::exit(2);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const std::string key = "\"k8_events_per_sec\"";
  const std::size_t at = text.find(key);
  if (at == std::string::npos) {
    std::fprintf(stderr, "packet_scale: %s lacks %s\n", path.c_str(),
                 key.c_str());
    std::exit(2);
  }
  const std::size_t colon = text.find(':', at);
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

int run(const ScaleOptions& scale, exec::RunnerOptions options) {
  exec::ExperimentRunner runner{std::move(options)};
  const std::vector<std::uint32_t> ks =
      scale.quick ? std::vector<std::uint32_t>{8}
                  : std::vector<std::uint32_t>{8, 16, 32};

  bench::print_header(
      "Packet-engine scaling: sharded pooled event engine on fat-tree "
      "flat-trees",
      "Intra-pod permutation, one shard per Pod, 100 Mb/s links, 2 s "
      "horizon;\nperf (events/sec, wall, RSS) on stderr — stdout is "
      "seed-deterministic.");
  bench::print_row({"k", "servers", "shards", "flows", "completed", "events",
                    "drops", "goodput_gbps"},
                   11);

  double k8_events_per_sec = 0.0;
  for (const std::uint32_t k : ks) {
    const SweepPoint point = runner.timed_stage(
        "packet_scale k=" + std::to_string(k),
        [&] { return run_point(k, runner); });
    const ClosParams clos = ClosParams::fat_tree(k);
    const double goodput_gbps =
        static_cast<double>(point.stats.bytes_acked) * 8 / kHorizonS / 1e9;
    const double events_per_sec =
        static_cast<double>(point.stats.events_processed) /
        (point.wall_s > 0 ? point.wall_s : 1e-9);
    if (k == 8) k8_events_per_sec = events_per_sec;
    bench::print_row(
        {std::to_string(k), std::to_string(clos.total_servers()),
         std::to_string(clos.pods), std::to_string(point.stats.flows),
         std::to_string(point.stats.flows_completed),
         std::to_string(point.stats.events_processed),
         std::to_string(point.stats.packets_dropped),
         bench::fmt(goodput_gbps)},
        11);
    std::fprintf(stderr,
                 "[perf] k=%u events=%llu wall=%.3fs events/sec=%.3e "
                 "peak_rss=%.1f MiB heap_max=%llu arena=%llu\n",
                 k,
                 static_cast<unsigned long long>(
                     point.stats.events_processed),
                 point.wall_s, events_per_sec, peak_rss_mib(),
                 static_cast<unsigned long long>(point.stats.heap_max),
                 static_cast<unsigned long long>(
                     point.stats.arena_high_water));
    exec::ResultRow row;
    row.set("k", k)
        .set("servers", clos.total_servers())
        .set("shards", clos.pods)
        .set("flows", point.stats.flows)
        .set("flows_completed", point.stats.flows_completed)
        .set("events_processed", point.stats.events_processed)
        .set("packets_dropped", point.stats.packets_dropped)
        .set("bytes_acked", point.stats.bytes_acked)
        .set("goodput_gbps", goodput_gbps);
    runner.add_row(std::move(row));
  }

  if (scale.compare_reference) {
    // Monolithic (single simulator, all pods) runs on both engines. The
    // queue advantage grows with the live-event population: per-shard
    // heaps stay shallow, one simulator holding every pod's in-flight
    // packets is where the index heap beats sifting 48-byte events.
    for (const std::uint32_t k : ks) {
      const auto [ref_events, ref_wall] =
          run_monolithic(k, PacketEngine::kReference, runner.seed());
      const auto [pool_events, pool_wall] =
          run_monolithic(k, PacketEngine::kPooled, runner.seed());
      std::fprintf(stderr,
                   "[perf] k=%u monolithic reference: events=%llu "
                   "wall=%.3fs (%.3e ev/s)\n",
                   k, static_cast<unsigned long long>(ref_events), ref_wall,
                   static_cast<double>(ref_events) / ref_wall);
      std::fprintf(stderr,
                   "[perf] k=%u monolithic pooled:    events=%llu "
                   "wall=%.3fs (%.3e ev/s) — engine speedup %.2fx\n",
                   k, static_cast<unsigned long long>(pool_events),
                   pool_wall,
                   static_cast<double>(pool_events) / pool_wall,
                   ref_wall / pool_wall);
    }
  }

  if (!scale.baseline_path.empty()) {
    const double baseline = read_baseline(scale.baseline_path);
    // The k=8 quick run is ~30 ms, so a single wall-clock sample is
    // noise-dominated on a loaded machine; gate on the best of three extra
    // serial monolithic-free reruns (stderr-only, no result rows).
    for (int rep = 0; rep < 3; ++rep) {
      const SweepPoint again = run_point(8, runner);
      const double eps = static_cast<double>(again.stats.events_processed) /
                         (again.wall_s > 0 ? again.wall_s : 1e-9);
      if (eps > k8_events_per_sec) k8_events_per_sec = eps;
    }
    // 2x slack: the gate catches order-of-magnitude regressions (an
    // accidental O(n) heap, a debug build) without flaking on machine noise.
    if (k8_events_per_sec < baseline / 2) {
      std::fprintf(stderr,
                   "packet_scale: PERF REGRESSION k=8 %.3e events/sec < "
                   "baseline %.3e / 2\n",
                   k8_events_per_sec, baseline);
      return 1;
    }
    std::fprintf(stderr,
                 "[perf] k=8 %.3e events/sec >= baseline %.3e / 2: ok\n",
                 k8_events_per_sec, baseline);
  }
  return runner.write() ? 0 : 1;
}

}  // namespace
}  // namespace flattree

int main(int argc, char** argv) {
  flattree::ScaleOptions scale;
  // Strip the bench-specific flags before handing the rest to the shared
  // runner parser (which rejects unknown arguments).
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      scale.quick = true;
    } else if (std::strcmp(argv[i], "--compare-reference") == 0) {
      scale.compare_reference = true;
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      scale.baseline_path = argv[++i];
    } else {
      rest.push_back(argv[i]);
    }
  }
  const auto options = flattree::bench::parse_runner_options(
      "packet_scale", static_cast<int>(rest.size()), rest.data(), 20170821);
  return flattree::run(scale, options);
}
