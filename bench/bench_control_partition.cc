// Partition tolerance: what the two-level control plane (root coordinator
// + per-Pod local controllers, control/hierarchy.h) buys over the flat
// primary/standby controller when the control network islands Pods while
// failures land and a conversion is in flight.
//
// Scenario: the testbed flat-tree serves 11 tracked server pairs (two
// intra-Pod pairs per Pod plus three cross-Pod pairs) for 12 simulated
// seconds; every cell also drives a staged Clos -> global conversion
// through its control plane. Control-plane chaos per scenario:
//
//   calm           no partitions — the two planes must price out identically
//                  (topology-aware RTTs reshape timing only).
//   part+storm     Pods 0 and 1 islanded for 3 s while intra-Pod fabric
//                  links under installed routes fail inside the islands;
//                  the conversion starts after the islands heal.
//   part+loss      Pods 2 and 3 islanded mid-conversion (from 4.2 s, never
//                  healing) under 8% control-message loss. The kEpochFlip
//                  barrier refuses to commit a stage spanning an island, so
//                  the stage in flight when the island opens rolls back one
//                  checkpoint and the execution lands kPartial on the last
//                  committed stage — never a whole-conversion rollback.
//   part+linkfail  compound: islands + intra-island link failures + 5%
//                  loss + the root controller dying mid-conversion. The
//                  hierarchy's Pod controllers pre-stage rules inside the
//                  islands, so the conversion commits once they heal; the
//                  flat root cannot reach the islanded tables and rolls
//                  the whole conversion back.
//
// Both planes dispatch repairs through ControlHierarchy::run: the
// hierarchical plane repairs intra-Pod damage with the islanded Pod's own
// controller (journaled, replayed on rejoin), while the flat plane must
// defer every repair that needs a rule installed inside an island until
// the partition heals. The claim to check: hierarchical blackhole
// pair-seconds <= flat in every partition cell, strictly below in
// part+storm and part+linkfail (the deferral window is the gap).
#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/util.h"
#include "control/conversion_exec.h"
#include "control/controller.h"
#include "control/hierarchy.h"
#include "core/flat_tree.h"
#include "net/failures.h"

namespace flattree {
namespace {

// Tracked pairs: two intra-Pod pairs per Pod (different racks, so their
// paths cross the Pod fabric) plus three cross-Pod pairs.
std::vector<std::pair<NodeId, NodeId>> make_pairs(const Graph& g) {
  std::vector<std::vector<NodeId>> by_pod;
  for (NodeId s : g.servers()) {
    const std::size_t p = g.node(s).pod.index();
    if (by_pod.size() <= p) by_pod.resize(p + 1);
    by_pod[p].push_back(s);
  }
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (const std::vector<NodeId>& pod : by_pod) {
    const std::size_t n = pod.size();
    if (n >= 2) pairs.emplace_back(pod[0], pod[n - 1]);
    if (n >= 4) pairs.emplace_back(pod[1], pod[n - 2]);
  }
  const std::size_t pods = by_pod.size();
  for (std::size_t p = 0; p + 2 < pods + 1 && pods >= 3; ++p) {
    const std::size_t q = (p + 2) % pods;
    if (by_pod[p].size() > 2 && by_pod[q].size() > 2) {
      pairs.emplace_back(by_pod[p][2], by_pod[q][2]);
    }
  }
  return pairs;
}

// Up to `want` fabric links inside `pod` that installed routes of the
// tracked pairs cross — failing one is guaranteed to hit live intra-island
// traffic that the Pod's own controller can repair around.
std::vector<LinkId> pod_route_links(
    const CompiledMode& mode,
    const std::vector<std::pair<NodeId, NodeId>>& pairs, PodId pod,
    std::size_t want) {
  const Graph& g = mode.graph();
  std::vector<bool> taken(g.link_count(), false);
  std::vector<LinkId> picked;
  for (const auto& [src, dst] : pairs) {
    if (picked.size() >= want) break;
    if (g.node(src).pod != pod || g.node(dst).pod != pod) continue;
    for (const Path& path : mode.paths().server_paths(src, dst)) {
      if (picked.size() >= want) break;
      for (std::size_t h = 1; h + 2 < path.size(); ++h) {
        const NodeId a = path[h];
        const NodeId b = path[h + 1];
        if (g.node(a).pod != pod || g.node(b).pod != pod) continue;
        for (std::uint32_t i = 0; i < g.link_count(); ++i) {
          if (taken[i]) continue;
          const Link& l = g.link(LinkId{i});
          if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) {
            taken[i] = true;
            picked.push_back(LinkId{i});
            break;
          }
        }
        if (picked.size() >= want) break;
      }
    }
  }
  return picked;
}

struct Cell {
  const char* name;
  bool partitions{false};
  std::uint32_t partition_first{0};  // islands Pods [first, first + 2)
  double partition_start_s{1.0};
  double partition_end_s{4.0};       // < 0 = never heals within the run
  bool storm{false};
  double loss{0.0};
  double convert_at_s{1.0};
  double root_crash_at_s{-1.0};
};

void run(int argc, char** argv) {
  exec::ExperimentRunner runner{
      bench::parse_runner_options("control_partition", argc, argv, 47)};

  FlatTreeParams params;
  params.clos = ClosParams::testbed();
  params.six_port_per_column = 1;
  params.four_port_per_column = 1;
  ControllerOptions ctl_opts;
  ctl_opts.count_rules = false;
  // §4.3's parallel state distribution: a set of controllers each managing
  // a share of the switches divides the rule-update time. Both planes get
  // the same divisor, so the comparison isolates partition handling.
  ctl_opts.delay.controllers = 8;
  ctl_opts.sink = runner.obs();
  const Controller controller{FlatTree{params}, ctl_opts};

  const double duration = 12.0;
  const Cell cells[] = {
      {"calm", false, 0, 0.0, 0.0, false, 0.0, 1.0, -1.0},
      {"part+storm", true, 0, 1.0, 4.0, true, 0.0, 6.5, -1.0},
      {"part+loss", true, 2, 4.2, -1.0, false, 0.08, 2.0, -1.0},
      {"part+linkfail", true, 0, 1.0, 4.6, true, 0.05, 3.0, 3.5},
  };
  constexpr std::size_t kScenarios = 4;
  const ControlPlaneKind planes[] = {ControlPlaneKind::kHierarchical,
                                     ControlPlaneKind::kFlat};
  constexpr std::size_t kCells = 2 * kScenarios;

  // The shared physical storm: intra-island fabric links under installed
  // routes of Pods 0 and 1, failing inside the partition window and
  // recovering after every cell's island has healed.
  const CompiledMode cal = controller.compile_uniform(PodMode::kClos);
  const std::vector<std::pair<NodeId, NodeId>> cal_pairs =
      make_pairs(cal.graph());
  FailureSchedule storm;
  for (std::uint32_t pod : {0u, 1u}) {
    for (LinkId l : pod_route_links(cal, cal_pairs, PodId{pod}, 2)) {
      storm.fail_at(1.5, FailureSet{{l}, {}});
      storm.recover_at(5.5, FailureSet{{l}, {}});
    }
  }

  bench::print_header(
      "Partition tolerance: hierarchical vs flat control plane",
      "testbed flat-tree (24 servers, 4 Pods), 11 tracked pairs served for\n"
      "12 s; every cell drives a staged Clos -> global conversion through\n"
      "its control plane (per-Pod stage checkpoints, topology-aware RTTs).\n"
      "Scenarios: calm; part+storm (Pods 0-1 islanded 1.0-4.0s, route-\n"
      "carrying intra-island links fail 1.5-5.5s, conversion after heal);\n"
      "part+loss (Pods 2-3 islanded from 4.2s, mid-conversion, never\n"
      "healing, 8% control loss: the stage in flight rolls back one\n"
      "checkpoint and the conversion lands kPartial, never a full rollback);\n"
      "part+linkfail (compound: islands 1.0-4.6s + link failures + 5% loss\n"
      "+ root controller dies at 3.5s, mid-conversion).\n"
      "hier = root + per-Pod controllers (islanded Pods repair locally,\n"
      "journal, replay on rejoin); flat = primary/standby root only\n"
      "(repairs into an island defer until it heals).\n"
      "blackhole in pair-seconds; lag = mean failure->repair.");
  bench::print_row({"plane", "scenario", "blackhole", "maxpair", "lag",
                    "rep l/r/d", "part d/r", "jrnl a/r", "conv", "failover"},
                   14);

  struct Outcome {
    HierarchyRunResult res;
  };
  const std::vector<Outcome> outcomes = runner.timed_stage(
      "control_partition cells", [&] {
        return bench::parallel_replicates(
            runner.pool(), kCells, [&](std::size_t cell) {
              const ControlPlaneKind kind = planes[cell / kScenarios];
              const Cell& sc = cells[cell % kScenarios];
              const CompiledMode from =
                  controller.compile_uniform(PodMode::kClos);
              const CompiledMode to =
                  controller.compile_uniform(PodMode::kGlobal);
              const std::vector<std::pair<NodeId, NodeId>> pairs =
                  make_pairs(from.graph());

              ControlHierarchyOptions hopts;
              hopts.channel.drop_probability = sc.loss;
              hopts.sink = runner.obs();
              const ControlHierarchy hier{controller, kind, hopts};

              HierarchyFaults faults;
              if (sc.partitions) {
                faults.partitions.push_back(
                    ControlPartition{PodId{sc.partition_first},
                                     sc.partition_start_s,
                                     sc.partition_end_s});
                faults.partitions.push_back(
                    ControlPartition{PodId{sc.partition_first + 1},
                                     sc.partition_start_s,
                                     sc.partition_end_s});
              }
              faults.root_crash_at_s = sc.root_crash_at_s;

              ConversionExecOptions exec_base;
              exec_base.stage_checkpoints = true;
              exec_base.seed = runner.seed();
              exec_base.sink = runner.obs();

              Outcome out;
              out.res = hier.run(from, pairs,
                                 sc.storm ? storm : FailureSchedule{}, faults,
                                 duration, &to, sc.convert_at_s, exec_base);
              return out;
            });
      });

  double blackhole[2][kScenarios] = {};
  for (std::size_t cell = 0; cell < kCells; ++cell) {
    const std::size_t pi = cell / kScenarios;
    const std::size_t si = cell % kScenarios;
    const Cell& sc = cells[si];
    const HierarchyRunResult& r = outcomes[cell].res;
    blackhole[pi][si] = r.blackhole_pair_s;
    const char* conv = r.conversion.has_value()
                           ? to_string(r.conversion->outcome)
                           : "none";
    bench::print_row(
        {to_string(planes[pi]), sc.name, bench::fmt(r.blackhole_pair_s, 3),
         bench::fmt(r.max_pair_blackhole_s, 3),
         bench::fmt(r.mean_repair_lag_s(), 3),
         std::to_string(r.repairs_local) + "/" +
             std::to_string(r.repairs_root) + "/" +
             std::to_string(r.repairs_deferred),
         std::to_string(r.partitions_detected) + "/" +
             std::to_string(r.partitions_rejoined),
         std::to_string(r.journal_appended) + "/" +
             std::to_string(r.journal_replayed),
         conv, std::to_string(r.failovers)},
        14);
    exec::ResultRow row;
    row.set("plane", to_string(planes[pi]))
        .set("scenario", sc.name)
        .set("loss", sc.loss)
        .set("blackhole_pair_s", r.blackhole_pair_s)
        .set("max_pair_blackhole_s", r.max_pair_blackhole_s)
        .set("mean_repair_lag_s", r.mean_repair_lag_s())
        .set("repairs_local", r.repairs_local)
        .set("repairs_root", r.repairs_root)
        .set("repairs_deferred", r.repairs_deferred)
        .set("partitions_detected", r.partitions_detected)
        .set("partitions_rejoined", r.partitions_rejoined)
        .set("heartbeats_missed", r.heartbeats_missed)
        .set("journal_appended", r.journal_appended)
        .set("journal_replayed", r.journal_replayed)
        .set("pairs_reconciled", r.pairs_reconciled)
        .set("failovers", r.failovers)
        .set("conversion_outcome", conv)
        .set("conversion_stages_committed",
             r.conversion.has_value() ? r.conversion->stages_committed : 0)
        .set("conversion_stages_total",
             r.conversion.has_value() ? r.conversion->stages_total : 0)
        .set("conversion_rules_skipped",
             r.conversion.has_value() ? r.conversion->rules_skipped_dead : 0);
    runner.add_row(std::move(row));
  }

  std::printf(
      "\nexpected shape: calm prices both planes identically (RTT shape\n"
      "only). In every partition cell the hierarchy's blackhole time is at\n"
      "most the flat plane's, and strictly below it in part+storm and\n"
      "part+linkfail: the islanded Pods repair their own damage within a\n"
      "heartbeat + local RTT, where the flat root must sit out the island\n"
      "(deferred repairs). A conversion hit by an island mid-flight rolls\n"
      "the in-flight stage back one checkpoint (part+loss lands kPartial on\n"
      "the last committed stage, both planes), and the hierarchy's Pod\n"
      "controllers keep pre-staging rules inside islands, so part+linkfail\n"
      "converts under the hierarchy while the flat root — locked out of the\n"
      "islanded tables — rolls the whole conversion back. No mixed-epoch\n"
      "rule set ever serves traffic under either plane.\n");
  bool dominated = true;
  bool strict = true;
  for (std::size_t si = 0; si < kScenarios; ++si) {
    if (!cells[si].partitions) continue;
    if (blackhole[0][si] > blackhole[1][si]) dominated = false;
    if ((cells[si].storm) && !(blackhole[0][si] < blackhole[1][si])) {
      strict = false;
    }
  }
  if (!dominated) {
    std::printf("WARNING: hierarchical blackhole above flat in a partition "
                "cell\n");
  }
  if (!strict) {
    std::printf("WARNING: hierarchical blackhole not strictly below flat in "
                "a storm cell\n");
  }
}

}  // namespace
}  // namespace flattree

int main(int argc, char** argv) {
  flattree::run(argc, argv);
  return 0;
}
