// Table 1: throughput of clustered all-to-all traffic on fat-tree vs random
// graph vs two-stage random graph, normalized against the minimum value
// among the three architectures for each cluster size.
//
// Scaling note: the paper uses a k=16 fat-tree (1024 servers) with cluster
// sizes 8 / 30 / 100 (rack-sized / sub-Pod / multi-Pod). We run a k=8
// fat-tree (128 servers, 4 servers per rack, 16 per Pod) with cluster sizes
// scaled to the same structural positions: 4 (one rack), 12 (sub-Pod), 24
// (1.5 Pods). Throughput is the max-min optimal-routing allocation over
// k-shortest paths (the paper's LP-minimum objective at subflow
// granularity). The expected shape: fat-tree wins rack-local clusters, the
// two-stage random graph wins Pod-scale clusters, the random graph wins
// multi-Pod clusters.
#include <cstdio>

#include "bench/util.h"
#include <unordered_map>

#include "lp/mcf.h"
#include "routing/ksp.h"
#include "topo/clos.h"
#include "topo/random_graph.h"
#include "traffic/patterns.h"

namespace flattree {
namespace {

// Fabric-throughput MCF (the Jellyfish methodology the paper follows):
// switch-switch edges are capacity constraints; server access links are
// not shared resources — instead every flow is individually capped at the
// line rate by a private per-commodity edge. This measures what the
// *fabric* can sustain, which is what distinguishes the architectures.
McfInstance fabric_mcf(const Graph& g, const Workload& flows,
                       std::uint32_t k) {
  const LogicalTopology topo{g};
  PathCache cache{g, k};
  McfInstance instance;
  std::unordered_map<std::uint32_t, std::uint32_t> edge_row;
  const auto row_for = [&](std::uint32_t directed) {
    const auto [it, inserted] = edge_row.try_emplace(
        directed, static_cast<std::uint32_t>(instance.capacity.size()));
    if (inserted) instance.capacity.push_back(topo.capacity(directed));
    return it->second;
  };
  for (const Flow& f : flows) {
    McfCommodity commodity;
    // Private line-rate cap shared by all of this flow's paths.
    const std::uint32_t cap_row =
        static_cast<std::uint32_t>(instance.capacity.size());
    instance.capacity.push_back(10e9);
    for (const Path& path :
         cache.server_paths(NodeId{f.src}, NodeId{f.dst})) {
      std::vector<std::uint32_t> rows{cap_row};
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        // Skip server access hops: only the switch fabric is shared.
        if (!is_switch(g.node(path[i]).role) ||
            !is_switch(g.node(path[i + 1]).role)) {
          continue;
        }
        rows.push_back(row_for(topo.directed_index(path[i], path[i + 1])));
      }
      commodity.paths.push_back(std::move(rows));
    }
    instance.commodities.push_back(std::move(commodity));
  }
  return instance;
}

double min_rate(const Graph& g, const Workload& flows, std::uint32_t k) {
  return solve_max_min_fill(fabric_mcf(g, flows, k)).min_rate;
}

void run() {
  const std::uint32_t kFatTreeK = 8;
  const std::uint32_t kPaths = 8;
  const ClosParams clos = ClosParams::fat_tree(kFatTreeK);

  const Graph fat_tree = build_clos(clos);
  RandomGraphParams rg_params = RandomGraphParams::from_clos(clos);
  rg_params.seed = 20170821;
  const Graph random_graph = build_random_graph(rg_params);
  TwoStageParams ts_params = TwoStageParams::from_clos(clos);
  ts_params.seed = 20170821;
  const Graph two_stage = build_two_stage_random_graph(ts_params);

  bench::print_header(
      "Table 1: normalized throughput of clustered all-to-all traffic",
      "k=8 fat-tree device budget (paper: k=16); cluster sizes scaled\n"
      "4 -> rack, 12 -> sub-Pod, 24 -> 1.5 Pods (paper: 8 / 30 / 100);\n"
      "all clusters active concurrently as in the paper.\n"
      "Throughput = max-min optimal allocation over 8-shortest paths.");

  bench::print_row({"ClusterSize", "Fat-tree", "RandomGraph", "TwoStageRG",
                    "paper-reference"});
  const std::uint32_t sizes[] = {4, 12, 24};
  const char* paper_rows[] = {"paper(8): 1.91 / 1.00 / 1.16",
                              "paper(30): 1.00 / 1.38 / 1.65",
                              "paper(100): 1.00 / 1.59 / 1.17"};
  int row = 0;
  for (const std::uint32_t size : sizes) {
    const Workload flows =
        clustered_all_to_all(clos.total_servers(), size);
    const double ft = min_rate(fat_tree, flows, kPaths);
    const double rg = min_rate(random_graph, flows, kPaths);
    const double ts = min_rate(two_stage, flows, kPaths);
    const double base = std::min({ft, rg, ts});
    bench::print_row({std::to_string(size), bench::fmt(ft / base),
                      bench::fmt(rg / base), bench::fmt(ts / base),
                      paper_rows[row++]});
  }
}

}  // namespace
}  // namespace flattree

int main() {
  flattree::run();
  return 0;
}
