// Table 1: throughput of clustered all-to-all traffic on fat-tree vs random
// graph vs two-stage random graph, normalized against the minimum value
// among the three architectures for each cluster size.
//
// Scaling note: the paper uses a k=16 fat-tree (1024 servers) with cluster
// sizes 8 / 30 / 100 (rack-sized / sub-Pod / multi-Pod). We run a k=8
// fat-tree (128 servers, 4 servers per rack, 16 per Pod) with cluster sizes
// scaled to the same structural positions: 4 (one rack), 12 (sub-Pod), 24
// (1.5 Pods). Throughput is the max-min optimal-routing allocation over
// k-shortest paths (the paper's LP-minimum objective at subflow
// granularity). The expected shape: fat-tree wins rack-local clusters, the
// two-stage random graph wins Pod-scale clusters, the random graph wins
// multi-Pod clusters.
//
// Execution: the 3x3 (cluster size x architecture) grid fans across the
// exec pool as independent cells, and each cell's KSP precompute fans again
// over the workload's switch pairs; results land in BENCH_table1.json.
#include <cstdio>

#include "bench/util.h"
#include "lp/mcf.h"
#include "routing/ksp.h"
#include "topo/clos.h"
#include "topo/random_graph.h"
#include "traffic/patterns.h"

namespace flattree {
namespace {

double min_rate(const Graph& g, const Workload& flows, std::uint32_t k,
                exec::ThreadPool* pool, const obs::ObsSink& sink) {
  return solve_max_min_fill(bench::fabric_mcf(g, flows, k, pool, sink))
      .min_rate;
}

void run(int argc, char** argv) {
  // Default seed = the random-graph wiring seed the seed-state bench
  // hard-coded; a bare run reproduces the recorded numbers exactly.
  exec::ExperimentRunner runner{
      bench::parse_runner_options("table1", argc, argv, 20170821)};

  const std::uint32_t kFatTreeK = 8;
  const std::uint32_t kPaths = 8;
  const ClosParams clos = ClosParams::fat_tree(kFatTreeK);

  const Graph fat_tree = build_clos(clos);
  RandomGraphParams rg_params = RandomGraphParams::from_clos(clos);
  rg_params.seed = runner.seed();
  const Graph random_graph = build_random_graph(rg_params);
  TwoStageParams ts_params = TwoStageParams::from_clos(clos);
  ts_params.seed = runner.seed();
  const Graph two_stage = build_two_stage_random_graph(ts_params);

  bench::print_header(
      "Table 1: normalized throughput of clustered all-to-all traffic",
      "k=8 fat-tree device budget (paper: k=16); cluster sizes scaled\n"
      "4 -> rack, 12 -> sub-Pod, 24 -> 1.5 Pods (paper: 8 / 30 / 100);\n"
      "all clusters active concurrently as in the paper.\n"
      "Throughput = max-min optimal allocation over 8-shortest paths.");

  const std::uint32_t sizes[] = {4, 12, 24};
  const Graph* graphs[] = {&fat_tree, &random_graph, &two_stage};
  const char* arch_names[] = {"fat_tree", "random_graph", "two_stage_rg"};
  const char* paper_rows[] = {"paper(8): 1.91 / 1.00 / 1.16",
                              "paper(30): 1.00 / 1.38 / 1.65",
                              "paper(100): 1.00 / 1.59 / 1.17"};

  // One cell per (cluster size, architecture); each solves its own MCF.
  std::vector<double> rates(9, 0.0);
  runner.timed_stage("table1 grid", [&] {
    exec::parallel_for(runner.pool(), rates.size(), [&](std::size_t i) {
      const Workload flows =
          clustered_all_to_all(clos.total_servers(), sizes[i / 3]);
      rates[i] =
          min_rate(*graphs[i % 3], flows, kPaths, runner.pool(), runner.obs());
    });
  });

  bench::print_row({"ClusterSize", "Fat-tree", "RandomGraph", "TwoStageRG",
                    "paper-reference"});
  for (std::size_t row = 0; row < 3; ++row) {
    const double ft = rates[row * 3 + 0];
    const double rg = rates[row * 3 + 1];
    const double ts = rates[row * 3 + 2];
    const double base = std::min({ft, rg, ts});
    bench::print_row({std::to_string(sizes[row]), bench::fmt(ft / base),
                      bench::fmt(rg / base), bench::fmt(ts / base),
                      paper_rows[row]});
    for (std::size_t arch = 0; arch < 3; ++arch) {
      exec::ResultRow json_row;
      json_row.set("cluster_size", sizes[row])
          .set("arch", arch_names[arch])
          .set("min_rate_bps", rates[row * 3 + arch])
          .set("normalized", rates[row * 3 + arch] / base);
      runner.add_row(std::move(json_row));
    }
  }
}

}  // namespace
}  // namespace flattree

int main(int argc, char** argv) {
  flattree::run(argc, argv);
  return 0;
}
