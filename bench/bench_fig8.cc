// Figure 8: CDF of flow completion time for the four Facebook-style traces
// (Hadoop-1, Hadoop-2, Web, Cache) on six networks built from the same
// device budget:
//   flat-tree global / local / Clos (k-shortest + MPTCP) / Clos (ECMP+TCP),
//   random graph, two-stage random graph.
//
// Scaling note: the paper uses topo-1 (4096 servers) and hour-long traces;
// we use a quarter-scale topo-1 (8 Pods x (4+4) switches, 512 servers, the
// same 4:1 edge oversubscription) and synthesize sub-second traces from the
// published locality statistics (see src/traffic/traces.h), with the flow
// arrival rate and mean size (10 MB) chosen to load the fabric to the
// regime where topology matters (~0.5 of core capacity for network-wide
// traffic). Reported: FCT percentiles per network per trace. The paper's
// shape: global ~ random graph, local ~ two-stage random graph; Clos+ECMP
// is the clear loser on Hadoop-1; Clos competitive on Hadoop-2
// (rack-local); Clos modes worst for Web/Cache (Pod-local).
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/util.h"
#include "core/flat_tree.h"
#include "topo/clos.h"
#include "topo/random_graph.h"
#include "traffic/traces.h"

namespace flattree {
namespace {

struct System {
  std::string name;
  Graph graph;
  bool ecmp{false};
};

std::vector<System> build_systems(const ClosParams& clos) {
  std::vector<System> systems;
  const FlatTree tree{FlatTreeParams::defaults_for(clos)};
  systems.push_back({"ft-global", tree.realize_uniform(PodMode::kGlobal)});
  systems.push_back({"ft-local", tree.realize_uniform(PodMode::kLocal)});
  systems.push_back({"ft-clos(ksp)", tree.realize_uniform(PodMode::kClos)});
  systems.push_back(
      {"ft-clos(ecmp)", tree.realize_uniform(PodMode::kClos), true});
  systems.push_back({"random-graph", build_random_graph_from_clos(clos, 42)});
  TwoStageParams ts = TwoStageParams::from_clos(clos);
  ts.seed = 42;
  systems.push_back({"two-stage-rg", build_two_stage_random_graph(ts)});
  return systems;
}

void run() {
  // Quarter-scale topo-1 (see header note).
  const ClosParams clos{8, 4, 4, 4, 16, 4, 16, 8};
  constexpr std::uint32_t kPaths = 8;
  bench::print_header(
      "Figure 8: flow completion time CDF by trace and network (ms)",
      "quarter-scale topo-1 device budget (512 servers); columns are FCT\n"
      "percentiles in milliseconds, lower is better.");

  auto systems = build_systems(clos);
  for (const TraceParams& base :
       {TraceParams::hadoop1(), TraceParams::hadoop2(), TraceParams::web(),
        TraceParams::cache()}) {
    TraceParams params = base;
    params.duration_s = 0.3;
    params.flows_per_s = 6000;
    params.mean_flow_bytes = 10e6;  // uniform size keeps load comparable
    const Workload flows = generate_trace(clos, params);
    const LocalityMix mix = measure_locality(clos, flows);
    std::printf("\n--- %s: %zu flows (rack %.0f%% / pod %.0f%% / inter %.0f%%) ---\n",
                params.name.c_str(), flows.size(), mix.intra_rack * 100,
                mix.intra_pod * 100, mix.inter_pod * 100);
    bench::print_row({"network", "p10", "p50", "p90", "p99", "mean", "done%"},
                     14);
    for (System& system : systems) {
      FluidOptions options;
      options.max_time_s = 100.0;
      FluidSimulator sim{
          system.graph,
          system.ecmp ? bench::ecmp_provider(system.graph)
                      : bench::ksp_provider(system.graph, kPaths),
          options};
      const auto results = sim.run(flows);
      std::vector<double> fct_ms;
      std::size_t done = 0;
      for (const auto& r : results) {
        if (r.completed) {
          fct_ms.push_back(r.fct_s() * 1e3);
          ++done;
        }
      }
      bench::print_row(
          {system.name, bench::fmt(bench::percentile(fct_ms, 10)),
           bench::fmt(bench::percentile(fct_ms, 50)),
           bench::fmt(bench::percentile(fct_ms, 90)),
           bench::fmt(bench::percentile(fct_ms, 99)),
           bench::fmt(bench::mean(fct_ms)),
           bench::fmt(100.0 * static_cast<double>(done) /
                      static_cast<double>(results.size()), 1)},
          14);
    }
  }
  std::printf(
      "\npaper shape: ft-global ~ random-graph, ft-local ~ two-stage-rg;\n"
      "Clos+ECMP worst on Hadoop-1; Clos best on Hadoop-2 (rack-local);\n"
      "local mode best on Web/Cache (Pod-local).\n");
}

}  // namespace
}  // namespace flattree

int main() {
  flattree::run();
  return 0;
}
