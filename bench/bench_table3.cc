// Table 3: conversion delay breakdown on the testbed — OCS reconfiguration,
// OpenFlow rule deletion (rules of the outgoing mode) and rule addition
// (rules of the incoming mode). The experiment in Figure 10 cycles
// ... -> Local -> Global -> Clos -> Local -> ..., so each row's delete term
// is priced by the previous mode in that cycle.
//
// Rule counts come from compiling each mode's k-shortest-path routing
// (k = 4) with ingress/egress prefix aggregation on the actual testbed
// graphs; per-rule latencies are the Table 3 calibration constants
// (DESIGN.md).
#include <cstdio>

#include "bench/util.h"
#include "control/controller.h"
#include "topo/params.h"

namespace flattree {
namespace {

void run() {
  FlatTreeParams params;
  params.clos = ClosParams::testbed();
  params.six_port_per_column = 1;
  params.four_port_per_column = 1;
  ControllerOptions options;
  options.k_global = options.k_local = options.k_clos = 4;
  const Controller ctl{FlatTree{params}, options};

  const CompiledMode global = ctl.compile_uniform(PodMode::kGlobal);
  const CompiledMode local = ctl.compile_uniform(PodMode::kLocal);
  const CompiledMode clos = ctl.compile_uniform(PodMode::kClos);

  bench::print_header(
      "Table 3: conversion delay breakdown (ms)",
      "rows: conversion *to* a mode, from its predecessor in the Figure 10\n"
      "cycle (Local->Global, Clos->Local, Global->Clos).");

  std::printf("\nper-mode rule tables (max rules per switch, k=4):\n");
  std::printf("  global %llu   local %llu   clos %llu    (paper: 242 / 180 / 76)\n",
              static_cast<unsigned long long>(global.max_rules_per_switch()),
              static_cast<unsigned long long>(local.max_rules_per_switch()),
              static_cast<unsigned long long>(clos.max_rules_per_switch()));

  bench::print_row({"To-topology", "ConfigOCS", "DeleteRule", "AddRule",
                    "Total", "(paper)"},
                   13);
  struct Row {
    const char* name;
    const CompiledMode* from;
    const CompiledMode* to;
    const char* paper;
  };
  const Row rows[] = {
      {"Global", &local, &global, "160/477/644/1281"},
      {"Local", &clos, &local, "160/202/482/844"},
      {"Clos", &global, &clos, "160/635/209/1004"},
  };
  for (const Row& row : rows) {
    const ConversionReport r = ctl.plan_conversion(*row.from, *row.to);
    bench::print_row({row.name, bench::fmt(r.ocs_s * 1e3, 0),
                      bench::fmt(r.delete_s * 1e3, 0),
                      bench::fmt(r.add_s * 1e3, 0),
                      bench::fmt(r.total_s() * 1e3, 0), row.paper},
                     13);
  }

  // §4.3 extension: distributed controllers shard the rule distribution.
  ControllerOptions sharded = options;
  sharded.delay.controllers = 4;
  const Controller fast_ctl{FlatTree{params}, sharded};
  const ConversionReport fast = fast_ctl.plan_conversion(local, global);
  std::printf("\nwith 4 distributed controllers (§4.3): Local->Global total "
              "%.0f ms (vs %.0f ms sequential)\n",
              fast.total_s() * 1e3,
              ctl.plan_conversion(local, global).total_s() * 1e3);
}

}  // namespace
}  // namespace flattree

int main() {
  flattree::run();
  return 0;
}
