// Ablation (§3.2): Pod-core wiring pattern 1 vs pattern 2.
//
// Pattern 1 packs blade-B connectors continuously Pod by Pod; pattern 2
// advances one extra core per Pod. The paper notes pattern 1 exploits the
// side connections best, but degenerates when h/r is a multiple of m (Pods
// repeat the same wiring); pattern 2 restores diversity there. We measure
// global-mode average path length and the diversity of core groups each
// blade-B column hits across Pods.
#include <cstdio>
#include <set>

#include "bench/util.h"
#include "core/flat_tree.h"
#include "net/stats.h"
#include "topo/params.h"

namespace flattree {
namespace {

// Number of distinct (core, slot-kind) placements blade-B connectors of
// column 0 take across pods — a direct wiring-diversity measure.
std::size_t blade_b_diversity(const FlatTree& tree) {
  std::set<std::uint32_t> offsets;
  const std::uint32_t g = tree.clos().core_connectors_per_edge();
  for (std::uint32_t pod = 0; pod < tree.clos().pods; ++pod) {
    // Position of the first blade-B slot inside column 0's core group.
    offsets.insert(tree.core_for_slot(pod, 0, 0) % g);
  }
  return offsets.size();
}

void compare(const char* label, const ClosParams& clos, std::uint32_t m,
             std::uint32_t n) {
  std::printf("\n--- %s (m=%u, n=%u, h/r=%u) ---\n", label, m, n,
              clos.core_connectors_per_edge());
  bench::print_row({"pattern", "avg-hops", "diameter", "rotation-diversity"},
                   20);
  for (const WiringPattern pattern :
       {WiringPattern::kPattern1, WiringPattern::kPattern2}) {
    FlatTreeParams params;
    params.clos = clos;
    params.six_port_per_column = m;
    params.four_port_per_column = n;
    params.pattern = pattern;
    const FlatTree tree{params};
    const auto stats =
        compute_path_length_stats(tree.realize_uniform(PodMode::kGlobal));
    bench::print_row(
        {pattern == WiringPattern::kPattern1 ? "pattern-1" : "pattern-2",
         bench::fmt(stats.avg_server_pair_hops, 4),
         std::to_string(stats.diameter),
         std::to_string(blade_b_diversity(tree))},
        20);
  }
}

void run() {
  bench::print_header("Ablation: Pod-core wiring pattern 1 vs 2 (§3.2)",
                      "global mode; lower avg hops / higher diversity better");
  // Degenerate case the paper calls out: h/r a multiple of m.
  // topo-2: h/r = 6; m = 2 divides 6 -> pattern 1 repeats every 3 pods.
  compare("topo-2, m divides h/r (degenerate for pattern 1)",
          ClosParams::topo2(), 2, 2);
  // Non-degenerate: m = 2, h/r = 8 but 16 pods wrap fully; try m not
  // dividing evenly into the rotation: topo-1 with m = 3.
  compare("topo-1, m=3 (non-divisor of h/r=8)", ClosParams::topo1(), 3, 2);
  compare("topo-1, default m=2", ClosParams::topo1(), 2, 2);
}

}  // namespace
}  // namespace flattree

int main() {
  flattree::run();
  return 0;
}
