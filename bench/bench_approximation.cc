// §5 (summary of the prior HotNets paper [47], Figures 5-8 there): "flat-tree
// well approximates random graph and two-stage random graph networks when
// functioning in global and local mode respectively: the difference in
// average path length is within 5% and the difference in throughput is less
// than 6%."
//
// This bench re-derives those two numbers on this implementation: for each
// Table 2 preset, compare flat-tree global mode against a true random graph
// and flat-tree local mode against a true two-stage random graph, both
// rewired from the identical device budget. Path length is the average over
// all server pairs; throughput is the max-min allocation of a permutation
// workload over 8-shortest paths.
#include <cstdio>
#include <numeric>

#include "bench/util.h"
#include "core/flat_tree.h"
#include "lp/mcf.h"
#include "net/stats.h"
#include "topo/random_graph.h"
#include "traffic/patterns.h"

namespace flattree {
namespace {

double permutation_throughput(const Graph& g, std::uint32_t servers) {
  Rng rng{5150};
  const Workload flows =
      bench::subsample(permutation_traffic(servers, rng), 256, 9);
  const McfResult r = solve_max_min_fill(bench::mcf_for(g, flows, 8));
  return r.avg_rate;
}

void run() {
  bench::print_header(
      "Approximation quality: flat-tree vs true random graphs (§5 / [47])",
      "paper claim: path length within 5%, throughput within 6%.\n"
      "columns: average server-pair hops and permutation throughput,\n"
      "flat-tree mode vs the random-graph family from the same devices.");

  bench::print_row({"preset", "comparison", "ft-hops", "rg-hops", "hopsΔ%",
                    "ft-Gbps", "rg-Gbps", "tputΔ%"},
                   12);
  for (const char* name : {"topo-1", "topo-2", "topo-4", "topo-5"}) {
    const ClosParams clos = ClosParams::preset(name);
    const FlatTree tree{FlatTreeParams::defaults_for(clos)};

    // Global mode vs random graph.
    {
      const Graph ft = tree.realize_uniform(PodMode::kGlobal);
      const Graph rg = build_random_graph_from_clos(clos, 1234);
      const double ft_hops = compute_path_length_stats(ft).avg_server_pair_hops;
      const double rg_hops = compute_path_length_stats(rg).avg_server_pair_hops;
      const double ft_tput = permutation_throughput(ft, clos.total_servers());
      const double rg_tput = permutation_throughput(rg, clos.total_servers());
      bench::print_row(
          {name, "global~RG", bench::fmt(ft_hops, 3), bench::fmt(rg_hops, 3),
           bench::fmt((ft_hops / rg_hops - 1) * 100, 1),
           bench::fmt(ft_tput / 1e9, 2), bench::fmt(rg_tput / 1e9, 2),
           bench::fmt((ft_tput / rg_tput - 1) * 100, 1)},
          12);
    }
    // Local mode vs two-stage random graph.
    {
      const Graph ft = tree.realize_uniform(PodMode::kLocal);
      TwoStageParams ts = TwoStageParams::from_clos(clos);
      ts.seed = 1234;
      const Graph rg = build_two_stage_random_graph(ts);
      const double ft_hops = compute_path_length_stats(ft).avg_server_pair_hops;
      const double rg_hops = compute_path_length_stats(rg).avg_server_pair_hops;
      const double ft_tput = permutation_throughput(ft, clos.total_servers());
      const double rg_tput = permutation_throughput(rg, clos.total_servers());
      bench::print_row(
          {name, "local~2sRG", bench::fmt(ft_hops, 3), bench::fmt(rg_hops, 3),
           bench::fmt((ft_hops / rg_hops - 1) * 100, 1),
           bench::fmt(ft_tput / 1e9, 2), bench::fmt(rg_tput / 1e9, 2),
           bench::fmt((ft_tput / rg_tput - 1) * 100, 1)},
          12);
    }
  }
  std::printf(
      "\nnote: flat-tree's local mode can relocate at most m+n servers per\n"
      "edge switch (h/r converter slots), so at deep oversubscription it is\n"
      "structurally farther from the ideal two-stage random graph than the\n"
      "prior paper's fully-flexible model — expect the local rows to exceed\n"
      "the global rows' gap.\n");
}

}  // namespace
}  // namespace flattree

int main() {
  flattree::run();
  return 0;
}
