// Extension bench (§4.3 made operational): what a live Clos -> global
// conversion costs the traffic riding through it, and what the staged
// epoch protocol buys over an atomic swap when the control channel lossy.
//
// Scenario: the testbed-size flat-tree carries a permutation workload when
// the controller converts every pod from Clos to global mode. The
// ConversionExecutor decomposes the diff into make-before-break patches,
// per-partition OCS rewires and two-phase epoch rule updates, executed
// over a lossy control channel (per-message drop probability swept over
// {0%, 1%, 10%}) with timeout/backoff/retries. The atomic-swap baseline
// (staged off: delete all old rules, one OCS pass, add all new rules)
// runs the identical conversion under the identical channel.
//
// Each cell replays the execution timeline through the fluid simulator
// (FCT inflation against an undisturbed baseline) and through a small
// packet-level drive (goodput during the churn window). The claim to
// check: the staged protocol holds route-availability blackhole time at
// zero at every loss rate — transient violations live entirely in the
// atomic baseline, and its blackhole integral grows with loss because
// retries stretch the rule hole — while the staged FCTs stay at baseline
// (the make-before-break detours ride the intersection graph's spare
// capacity).
#include <cstdio>
#include <utility>
#include <vector>

#include "bench/util.h"
#include "control/conversion_exec.h"
#include "control/controller.h"
#include "core/flat_tree.h"
#include "sim/packet.h"
#include "traffic/patterns.h"

namespace flattree {
namespace {

struct RunStats {
  double worst_fct{0.0};
  double p99_fct{0.0};
  std::size_t completed{0};
  std::size_t total{0};
};

RunStats summarize(const std::vector<FluidFlowResult>& results) {
  RunStats stats;
  std::vector<double> fcts;
  for (const FluidFlowResult& r : results) {
    ++stats.total;
    if (!r.completed) continue;
    ++stats.completed;
    fcts.push_back(r.fct_s());
  }
  for (double f : fcts) stats.worst_fct = std::max(stats.worst_fct, f);
  stats.p99_fct = bench::percentile(fcts, 99.0);
  return stats;
}

// Everything one (staged, loss) cell produces.
struct CellOutcome {
  ExecutionReport report;
  RunStats base;
  RunStats churn;
  ScheduleRunStats sched;
  std::uint64_t packet_bytes_acked{0};
  std::size_t packet_completed{0};
  std::size_t packet_flows{0};
};

void run(int argc, char** argv) {
  exec::ExperimentRunner runner{
      bench::parse_runner_options("conversion_churn", argc, argv, 23)};

  // The paper's 4-pod testbed layout: 24 servers, every pod convertible.
  FlatTreeParams params;
  params.clos = ClosParams::testbed();
  params.six_port_per_column = 1;
  params.four_port_per_column = 1;
  ControllerOptions opts;
  opts.count_rules = false;  // the executor prices rules from route footprints
  opts.sink = runner.obs();
  const Controller controller{FlatTree{params}, opts};

  Rng traffic_rng{runner.seed()};
  Workload flows =
      permutation_traffic(params.clos.total_servers(), traffic_rng);
  // Sized to span the whole conversion window (a few seconds at testbed
  // line rate), so the churn lands on in-flight traffic.
  for (Flow& f : flows) f.bytes = 2e9;

  const double losses[] = {0.0, 0.01, 0.10};
  const bool stagings[] = {true, false};
  constexpr std::size_t kCells = 6;  // stagings x losses
  const double t0 = 0.1;  // conversion starts with the workload in flight

  bench::print_header(
      "Extension: staged vs atomic live conversion under control-plane loss",
      "testbed flat-tree (24 servers), permutation traffic, 2 GB flows;\n"
      "every pod converts Clos -> global at t=0.1s while the flows run.\n"
      "staged = make-before-break patches + per-partition OCS + two-phase\n"
      "epoch rules; atomic = delete all / one OCS pass / add all. The same\n"
      "lossy control channel (drop prob per message, timeout + backoff +\n"
      "retries) drives both. blackhole = route-availability integral summed\n"
      "over pairs; FCTs in seconds.");
  bench::print_row({"protocol", "loss", "outcome", "base-fct", "churn-fct",
                    "inflation", "blackhole", "steps", "retries", "dropped",
                    "violations"},
                   11);

  // Cells share only the read-only controller: each compiles its own
  // modes and runs its own executor and simulators, so they fan across
  // the pool as independent replicates.
  const std::vector<CellOutcome> outcomes = runner.timed_stage(
      "conversion_churn cells", [&] {
        return bench::parallel_replicates(
            runner.pool(), kCells, [&](std::size_t cell) {
              const bool staged = stagings[cell / 3];
              const double loss = losses[cell % 3];
              const CompiledMode from =
                  controller.compile_uniform(PodMode::kClos);
              const CompiledMode to =
                  controller.compile_uniform(PodMode::kGlobal);

              // Track exactly the pairs the workload uses.
              const auto& servers = from.graph().servers();
              std::vector<std::pair<NodeId, NodeId>> pairs;
              pairs.reserve(flows.size());
              for (const Flow& f : flows) {
                pairs.emplace_back(servers[f.src], servers[f.dst]);
              }

              ConversionExecOptions exec_opts;
              exec_opts.staged = staged;
              exec_opts.channel.drop_probability = loss;
              exec_opts.seed = runner.seed();
              exec_opts.sink = runner.obs();
              const ConversionExecutor executor{controller, exec_opts};

              CellOutcome out;
              out.report = executor.execute(from, to, pairs,
                                            ConversionFaults{}, t0);

              // Undisturbed baseline on the outgoing mode vs the same
              // workload replayed through every transient topology.
              FluidOptions fluid_opts;
              fluid_opts.sink = runner.obs();
              FluidSimulator baseline{
                  from.graph(),
                  [&](NodeId src, NodeId dst, std::uint32_t) {
                    return from.paths().server_paths(src, dst);
                  },
                  fluid_opts};
              out.base = summarize(baseline.run(flows));
              out.churn = summarize(run_fluid_with_conversion(
                  out.report, flows, fluid_opts, &out.sched));

              // Packet-level spot check: a few small flows ride the same
              // timeline; goodput shows whether the churn window ever
              // swallowed packets.
              PacketSim sim;
              sim.set_network(*out.report.timeline.front().graph);
              out.packet_flows = 8;
              for (std::size_t i = 0; i < out.packet_flows; ++i) {
                const Flow& f = flows[i];
                sim.add_flow(f.src, f.dst, 2e6, 0.0,
                             conversion_paths_for(out.report, f));
              }
              drive_packet_sim(sim, out.report, flows,
                               out.report.finish_s + 5.0);
              for (std::size_t i = 0; i < out.packet_flows; ++i) {
                const auto fi = static_cast<std::uint32_t>(i);
                out.packet_bytes_acked += sim.flow_bytes_acked(fi);
                if (sim.flow_completed(fi)) ++out.packet_completed;
              }
              return out;
            });
      });

  for (std::size_t cell = 0; cell < kCells; ++cell) {
    const CellOutcome& out = outcomes[cell];
    const bool staged = stagings[cell / 3];
    const double loss = losses[cell % 3];
    const ExecutionReport& rep = out.report;
    bench::print_row(
        {staged ? "staged" : "atomic", bench::fmt(100.0 * loss, 0) + "%",
         to_string(rep.outcome), bench::fmt(out.base.worst_fct, 3),
         bench::fmt(out.churn.worst_fct, 3),
         bench::fmt(out.churn.worst_fct / out.base.worst_fct, 2) + "x",
         bench::fmt(rep.total_blackhole_s, 3),
         std::to_string(rep.steps.size()), std::to_string(rep.retries),
         std::to_string(rep.messages_dropped),
         std::to_string(rep.violations.size())},
        11);
    if (out.churn.completed != out.churn.total) {
      std::printf("  (%s @ %.0f%%: %zu/%zu flows completed)\n",
                  staged ? "staged" : "atomic", 100.0 * loss,
                  out.churn.completed, out.churn.total);
    }
    exec::ResultRow row;
    row.set("protocol", staged ? "staged" : "atomic")
        .set("loss", loss)
        .set("outcome", to_string(rep.outcome))
        .set("base_worst_fct_s", out.base.worst_fct)
        .set("base_p99_fct_s", out.base.p99_fct)
        .set("churn_worst_fct_s", out.churn.worst_fct)
        .set("churn_p99_fct_s", out.churn.p99_fct)
        .set("inflation", out.churn.worst_fct / out.base.worst_fct)
        .set("total_blackhole_s", rep.total_blackhole_s)
        .set("max_pair_blackhole_s", rep.max_pair_blackhole_s)
        .set("duration_s", rep.finish_s - rep.start_s)
        .set("steps", rep.steps.size())
        .set("retries", rep.retries)
        .set("messages_dropped", rep.messages_dropped)
        .set("violations", rep.violations.size())
        .set("pairs_patched", rep.pairs_patched)
        .set("rules_added", rep.rules_added)
        .set("rules_deleted", rep.rules_deleted)
        .set("completed", out.churn.completed)
        .set("total_flows", out.churn.total)
        .set("black_holed_lookups", out.sched.black_holed)
        .set("packet_bytes_acked", out.packet_bytes_acked)
        .set("packet_completed", out.packet_completed)
        .set("packet_flows", out.packet_flows);
    runner.add_row(std::move(row));
  }

  std::printf(
      "\nexpected shape: the staged protocol's blackhole time is zero at\n"
      "every loss rate (every pair keeps a valid route through every step;\n"
      "violations = 0) and its FCTs stay at baseline — the make-before-break\n"
      "detours ride the intersection graph's spare capacity. The atomic swap\n"
      "black-holes every pair for its whole rule window, and loss stretches\n"
      "that window: retries multiply under backoff, so its blackhole integral\n"
      "and FCT inflation grow with the drop rate while staged stays flat.\n");
}

}  // namespace
}  // namespace flattree

int main(int argc, char** argv) {
  flattree::run(argc, argv);
  return 0;
}
