// Extension bench (§2.2 future work): multi-stage flat-tree.
//
// Two stages of Pods: the lower Pods' "cores" are the upper Pods' edge
// switches; upper converter blades can forward relocated servers all the
// way to the top cores. This bench measures what each extra level of
// flattening buys: average path length and permutation throughput for every
// (lower mode, upper mode) combination on a 128-server two-stage network.
#include <cstdio>
#include <numeric>

#include "bench/util.h"
#include "core/multi_stage.h"
#include "net/stats.h"
#include "traffic/patterns.h"

namespace flattree {
namespace {

MultiStageParams make_params() {
  MultiStageParams p;
  p.lower.clos = ClosParams{4, 4, 4, 4, 8, 4, 16, 4};
  p.lower.six_port_per_column = 1;
  p.lower.four_port_per_column = 1;
  p.upper_pods = 4;
  p.upper_edge_per_pod = 4;
  p.upper_agg_per_pod = 4;
  p.upper_edge_uplinks = 4;
  p.upper_agg_uplinks = 4;
  p.top_cores = 16;
  p.top_core_ports = 4;
  p.upper_m = 1;
  p.upper_n = 1;
  return p;
}

void run() {
  bench::print_header(
      "Extension: multi-stage flat-tree (§2.2)",
      "128 servers, 96 switches in 6 layers; avg server-pair path length\n"
      "and total permutation throughput per (lower, upper) mode combo.");

  const MultiStageFlatTree tree{make_params()};
  Rng rng{31};
  const Workload flows = permutation_traffic(tree.total_servers(), rng);

  bench::print_row({"lower-mode", "upper-mode", "avg-hops", "diameter",
                    "perm-total-Gb/s"},
                   16);
  for (const PodMode lower : {PodMode::kClos, PodMode::kLocal, PodMode::kGlobal}) {
    for (const PodMode upper : {PodMode::kClos, PodMode::kLocal, PodMode::kGlobal}) {
      const Graph g = tree.realize_uniform(lower, upper);
      const PathLengthStats stats = compute_path_length_stats(g);
      FluidSimulator sim{g, bench::ksp_provider(g, 8)};
      const auto rates = sim.measure_rates(flows);
      const double total = std::accumulate(rates.begin(), rates.end(), 0.0);
      bench::print_row({to_string(lower), to_string(upper),
                        bench::fmt(stats.avg_server_pair_hops, 3),
                        std::to_string(stats.diameter),
                        bench::fmt(total / 1e9, 1)},
                       16);
    }
  }
  std::printf(
      "\nexpected: each additional flattened stage shortens paths; the\n"
      "(global, global) corner is the flattest network the hardware allows.\n");
}

}  // namespace
}  // namespace flattree

int main() {
  flattree::run();
  return 0;
}
