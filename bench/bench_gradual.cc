// Extension bench (§4.3): all-at-once vs gradual (Pod-by-Pod) conversion.
//
// The paper: "Network operators can ... convert the topology gradually
// involving some of the network devices ... Existing methods for updating
// or replacing a switch in the network, e.g. draining parts of the network
// incrementally before making the changes, can be used to avoid traffic
// disruption." This bench quantifies that: the same Clos -> global
// conversion on the testbed, executed (a) in one shot with a full
// control-plane blackout and (b) in four Pod stages where only rewired
// circuits stall. Reported: the goodput timeline and the total bytes lost
// relative to an unconverted run.
#include <cstdio>
#include <vector>

#include "bench/util.h"
#include "control/controller.h"
#include "sim/packet.h"
#include "topo/params.h"

namespace flattree {
namespace {

struct RunResult {
  std::vector<double> timeline_gbps;  // 0.25 s bins
  double total_bytes{0};
};

RunResult run_conversion(const Controller& ctl, bool gradual) {
  const ModeAssignment from = ModeAssignment::uniform(4, PodMode::kClos);
  const ModeAssignment to = ModeAssignment::uniform(4, PodMode::kGlobal);

  CompiledMode current = ctl.compile(from, 4);
  PacketSim sim;
  sim.set_network(current.graph());
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  for (std::uint32_t s = 0; s < 24; ++s) {
    for (std::uint32_t stride = 1; stride < 4; ++stride) {
      const std::uint32_t dst = (s + 6 * stride) % 24;
      pairs.emplace_back(s, dst);
      sim.add_flow(s, dst, 0, 0.0,
                   current.paths().server_paths(NodeId{s}, NodeId{dst}));
    }
  }
  const auto repath = [&](const CompiledMode& mode) {
    return [&, ptr = &mode](std::uint32_t flow) {
      return ptr->paths().server_paths(NodeId{pairs[flow].first},
                                       NodeId{pairs[flow].second});
    };
  };

  // 3 s warmup; conversion(s) start at t = 3 s; run to 10 s.
  RunResult result;
  std::uint64_t last = 0;
  double next_stage_t = 3.0;
  std::vector<ModeAssignment> stages =
      gradual ? Controller::gradual_plan(from, to)
              : std::vector<ModeAssignment>{to};
  std::size_t next_stage = 0;

  for (int bin = 1; bin <= 40; ++bin) {
    const double t = bin * 0.25;
    if (next_stage < stages.size() && t > next_stage_t) {
      CompiledMode target = ctl.compile(stages[next_stage], 4);
      const ConversionReport report = ctl.plan_conversion(current, target);
      sim.apply_conversion(target.graph(), repath(target),
                           gradual ? report.total_s() / 4 : report.total_s(),
                           gradual ? ConversionScope::kChangedOnly
                                   : ConversionScope::kFullBlackout);
      current = std::move(target);
      ++next_stage;
      next_stage_t += gradual ? 1.0 : 0.0;  // one stage per second
    }
    sim.run_until(t);
    const std::uint64_t bytes = sim.total_bytes_acked();
    result.timeline_gbps.push_back(static_cast<double>(bytes - last) * 8 /
                                   0.25 / 1e9);
    last = bytes;
  }
  result.total_bytes = static_cast<double>(sim.total_bytes_acked());
  return result;
}

void run() {
  FlatTreeParams params;
  params.clos = ClosParams::testbed();
  params.clos.link_bps = 1e9;
  params.six_port_per_column = 1;
  params.four_port_per_column = 1;
  ControllerOptions options;
  options.k_global = options.k_local = options.k_clos = 4;
  const Controller ctl{FlatTree{params}, options};

  bench::print_header(
      "Extension: all-at-once vs gradual Pod-by-Pod conversion (§4.3)",
      "testbed Clos -> global at t=3s; iPerf to all other pods; 1 Gb/s\n"
      "links; gradual = 4 stages, 1 s apart, changed-circuits-only stalls.");

  const RunResult once = run_conversion(ctl, /*gradual=*/false);
  const RunResult staged = run_conversion(ctl, /*gradual=*/true);

  std::printf("\ntime_s  all-at-once  gradual   (goodput, Gb/s)\n");
  for (std::size_t bin = 0; bin < once.timeline_gbps.size(); ++bin) {
    std::printf("%5.2f   %8.2f   %8.2f\n", (bin + 1) * 0.25,
                once.timeline_gbps[bin], staged.timeline_gbps[bin]);
  }

  // Disruption = goodput deficit during the conversion window [3 s, 8 s]
  // relative to the pre-conversion plateau.
  const auto deficit = [](const RunResult& r) {
    const double plateau = r.timeline_gbps[10];  // t = 2.75 s
    double missing = 0;
    for (std::size_t bin = 12; bin < 32; ++bin) {
      missing += std::max(0.0, plateau - r.timeline_gbps[bin]) * 0.25;
    }
    return missing;  // Gb not delivered vs steady Clos
  };
  std::printf("\ngoodput deficit through the conversion window:\n");
  std::printf("  all-at-once: %.2f Gb\n", deficit(once));
  std::printf("  gradual    : %.2f Gb\n", deficit(staged));
  std::printf("\nexpected: the staged conversion trades a longer window for\n"
              "a much shallower dip — no network-wide outage.\n");
}

}  // namespace
}  // namespace flattree

int main() {
  flattree::run();
  return 0;
}
