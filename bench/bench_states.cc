// §4.2 network-state accounting: per-switch OpenFlow rule counts under
// naive per-server-pair routing, ingress/egress prefix aggregation, and
// MAC-encoded source routing — on the testbed (exact, all pairs) and on
// topo-1 (sampled pairs, with the closed-form estimates the paper quotes:
// n^2 k L / N naive, S^2 k L / N aggregated, S x k + D x C source-routed).
#include <cstdio>

#include "bench/util.h"
#include "core/flat_tree.h"
#include "net/stats.h"
#include "routing/rules.h"
#include "routing/source_routing.h"
#include "topo/params.h"

namespace flattree {
namespace {

void report(const char* label, const Graph& g, std::uint32_t k,
            std::size_t pair_stride) {
  PathCache cache{g, k};
  auto pairs = all_ingress_pairs(g);
  if (pair_stride > 1) {
    std::vector<SwitchPair> sampled;
    for (std::size_t i = 0; i < pairs.size(); i += pair_stride) {
      sampled.push_back(pairs[i]);
    }
    pairs = std::move(sampled);
  }
  const PortMap ports{g};
  const auto stats = compute_path_length_stats(g);
  const StateCounts counts =
      analyze_states(g, cache, pairs, ports.max_port_count(), stats.diameter);

  std::printf("\n--- %s (k=%u, %zu ingress pairs%s) ---\n", label, k,
              pairs.size(), pair_stride > 1 ? ", sampled" : "");
  std::printf("  avg path length L = %.2f, diameter %u, max ports %zu\n",
              counts.avg_path_length, stats.diameter, ports.max_port_count());
  std::printf("  naive      : avg %12.0f  max %12llu   (formula n^2kL/N = %.0f)\n",
              counts.naive_avg,
              static_cast<unsigned long long>(counts.naive_max),
              counts.formula_naive_avg);
  std::printf("  aggregated : avg %12.0f  max %12llu   (formula S^2kL/N = %.0f)\n",
              counts.aggregated_avg,
              static_cast<unsigned long long>(counts.aggregated_max),
              counts.formula_aggregated_avg);
  std::printf("  src-routed : ingress max %llu, transit DxC = %llu\n",
              static_cast<unsigned long long>(counts.ingress_max),
              static_cast<unsigned long long>(counts.transit_static));
  std::printf("  naive -> aggregated reduction: %.0fx (paper: 400-1600x for "
              "20-40 servers/ToR)\n",
              counts.naive_avg / counts.aggregated_avg);
}

void run() {
  bench::print_header("Network state accounting (§4.2, §5.3)",
                      "per-switch OpenFlow rule counts by aggregation level");

  // Testbed, all three modes (paper §5.3: max 242 / 180 / 76 with k=4).
  FlatTreeParams params;
  params.clos = ClosParams::testbed();
  params.six_port_per_column = 1;
  params.four_port_per_column = 1;
  const FlatTree tree{params};
  report("testbed global mode", tree.realize_uniform(PodMode::kGlobal), 4, 1);
  report("testbed local mode", tree.realize_uniform(PodMode::kLocal), 4, 1);
  report("testbed clos mode", tree.realize_uniform(PodMode::kClos), 4, 1);

  // topo-1, sampled pairs (the full global pair set is 320x319). The Clos
  // mode carries 32 servers per ToR, which is where the paper's 400-1600x
  // naive -> aggregated reduction claim lives (here 32^2 = 1024x).
  const FlatTree big{FlatTreeParams::defaults_for(ClosParams::topo1())};
  report("topo-1 global mode", big.realize_uniform(PodMode::kGlobal), 8, 64);
  report("topo-1 clos mode", big.realize_uniform(PodMode::kClos), 8, 64);
}

}  // namespace
}  // namespace flattree

int main() {
  flattree::run();
  return 0;
}
