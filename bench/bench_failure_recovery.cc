// Extension bench (the paper's deferred failure evaluation, §4.2.1
// footnote 2, taken dynamic): FCT inflation under a live failure schedule
// with controller-driven recovery, for flat-tree Clos / local / global
// modes on the same physical network.
//
// Scenario: a permutation workload is in flight when three quarters of the
// core layer dies (three whole core columns — a correlated failure: one
// OCS partition, one power feed). The data plane breaks immediately; the
// controller recomputes routing state incrementally around the failure
// (Controller::plan_repair) and the refreshed routes land one repair lag
// later, priced by the Table-3 delay model from the exact rule delta. In
// global mode the repair includes the converter rewire: servers broken out
// onto the dead cores are re-homed onto their aggregation switches by
// flipping the converter pair to local (one OCS pass). The simulation runs
// on the union of the base realization and the rescue circuits — unused
// links are inert under max-min filling, so pre-repair behaviour is
// unchanged and the rescued attachments become routable the moment the
// repaired paths arrive.
//
// The claim to check (footnote 2 made dynamic): Clos concentrates all
// inter-pod capacity in the core layer, so losing most of it throttles the
// worst flow for the entire outage no matter how fast routing reconverges;
// the flattened modes keep inter-pod capacity in side/local circuits that
// bypass the cores, so after one repair lag their worst flows run nearly
// unthrottled — worst-case FCT inflates faster in Clos mode than in global
// mode under the same FailureSchedule.
#include <cstdio>
#include <vector>

#include "bench/util.h"
#include "control/controller.h"
#include "core/flat_tree.h"
#include "net/failures.h"
#include "sim/fluid.h"
#include "traffic/patterns.h"

namespace flattree {
namespace {

struct RunStats {
  double worst_fct{0.0};
  double p99_fct{0.0};
  std::size_t completed{0};
  std::size_t total{0};
};

RunStats summarize(const std::vector<FluidFlowResult>& results) {
  RunStats stats;
  std::vector<double> fcts;
  for (const FluidFlowResult& r : results) {
    ++stats.total;
    if (!r.completed) continue;
    ++stats.completed;
    fcts.push_back(r.fct_s());
  }
  for (double f : fcts) stats.worst_fct = std::max(stats.worst_fct, f);
  stats.p99_fct = bench::percentile(fcts, 99.0);
  return stats;
}

PathProvider mode_provider(CompiledMode& mode) {
  return [&mode](NodeId src, NodeId dst, std::uint32_t) {
    return mode.paths().server_paths(src, dst);
  };
}

// Everything one mode's pipeline produces: baseline sim, repair plan,
// scheduled (failure-injected) sim. One exec cell per mode.
struct ModeOutcome {
  RunStats base;
  RunStats failed;
  double repair_lag_s{0.0};
  std::size_t pairs_invalidated{0};
  std::size_t pairs_retained{0};
  ScheduleRunStats sched;
};

void run(int argc, char** argv) {
  // Default seed = the permutation-workload seed the seed-state bench
  // hard-coded.
  exec::ExperimentRunner runner{
      bench::parse_runner_options("failure_recovery", argc, argv, 17)};
  const ClosParams clos{8, 4, 4, 4, 8, 4, 16, 8};  // 256 servers, 2:1 edge
  FlatTreeParams params;
  params.clos = clos;
  params.six_port_per_column = 2;
  params.four_port_per_column = 2;
  const FlatTree tree{params};

  // Rule updates fan out over distributed controllers (§4.3: "a set of
  // controllers each managing a number of switches") so the repair lag
  // lands on the same time scale as the FCTs; the 160 ms OCS pass does not
  // divide.
  ControllerOptions opts;
  opts.count_rules = false;  // the fluid section prices repairs per pair
  opts.delay.controllers = 64;
  opts.sink = runner.obs();
  const Controller controller{FlatTree{params}, opts};

  Rng traffic_rng{runner.seed()};
  Workload flows = permutation_traffic(clos.total_servers(), traffic_rng);
  for (Flow& f : flows) f.bytes = 200e6;  // 200 MB, all arriving at t=0

  // Three whole core columns (three quarters of the core layer) die at
  // t=0.05 s and stay down past the run. Node ids are mode-invariant, so
  // the identical schedule applies to every mode.
  const std::uint32_t column_width = clos.core_connectors_per_edge();
  const double t_fail = 0.05;
  const double t_recover = 60.0;

  bench::print_header(
      "Extension: FCT inflation under live core-column failure + recovery",
      "permutation traffic, 200 MB flows; three core columns (12/16 cores) fail\n"
      "at t=0.05s for the rest of the run; the controller repairs routing\n"
      "incrementally (global mode: + converter rewire rescuing the servers\n"
      "stranded on the dead cores), lag priced by the Table-3 delay model\n"
      "(64 controllers). FCTs in seconds.");
  bench::print_row({"mode", "base-worst", "fail-worst", "inflation",
                    "lag(s)", "evicted", "retained", "reroutes", "blackhole"},
                   11);

  // The three modes share nothing mutable (each cell compiles its own
  // CompiledModes and runs its own simulators), so they fan across the
  // pool as multi-replicate fluid-sim runs.
  const PodMode modes[] = {PodMode::kClos, PodMode::kLocal, PodMode::kGlobal};
  const std::vector<ModeOutcome> outcomes = runner.timed_stage(
      "failure_recovery modes", [&] {
        return bench::parallel_replicates(
            runner.pool(), 3, [&](std::size_t cell) {
              const PodMode mode = modes[cell];
              CompiledMode live = controller.compile_uniform(mode);
              const FailureSet columns = core_column_failure(
                  live.graph(), 0, 3 * column_width);

              // Failure-free baseline; warms the path cache with exactly
              // the pairs the workload uses, so the repair below prices a
              // realistic blast radius.
              FluidOptions fluid_opts;
              fluid_opts.sink = runner.obs();
              FluidSimulator baseline{live.graph(), mode_provider(live),
                                      fluid_opts};
              ModeOutcome out;
              out.base = summarize(baseline.run(flows));

              // The controller's incremental repair: rescue stranded
              // servers by converter rewire (global mode only — the other
              // modes attach no servers to cores), evict only the broken
              // pairs, re-solve them on the repaired topology, price the
              // rule delta.
              RepairPlan plan =
                  controller.plan_repair(live, columns, RepairOptions{});

              // The scheduled run: healthy routes until the failure
              // refresh installs the repaired cache. The union graph
              // carries the rescue circuits, inert until the repaired
              // paths route onto them.
              // The union graph carries the rescue circuits of the repair:
              // present from the start but unused (and therefore inert under
              // max-min filling) until the repaired paths route onto them.
              CompiledMode pre = controller.compile_uniform(mode);
              const Graph sim_graph = graph_union(pre.graph(), *plan.graph);
              FluidSimulator sim{sim_graph, mode_provider(pre), fluid_opts};
              FailureSchedule schedule;
              schedule.fail_at(t_fail, columns);
              schedule.recover_at(t_recover, columns);
              const RoutingRefresh refresh =
                  [&](const Graph&) -> PathProvider {
                return mode_provider(live);
              };
              out.failed = summarize(sim.run_with_schedule(
                  flows, schedule, plan.total_s(), refresh, &out.sched));
              out.repair_lag_s = plan.total_s();
              out.pairs_invalidated = plan.pairs_invalidated;
              out.pairs_retained = plan.pairs_retained;
              return out;
            });
      });

  for (std::size_t cell = 0; cell < 3; ++cell) {
    const ModeOutcome& out = outcomes[cell];
    const PodMode mode = modes[cell];
    bench::print_row(
        {to_string(mode), bench::fmt(out.base.worst_fct, 3),
         bench::fmt(out.failed.worst_fct, 3),
         bench::fmt(out.failed.worst_fct / out.base.worst_fct, 2) + "x",
         bench::fmt(out.repair_lag_s, 3),
         std::to_string(out.pairs_invalidated),
         std::to_string(out.pairs_retained),
         std::to_string(out.sched.reroutes),
         std::to_string(out.sched.black_holed)},
        11);
    if (out.failed.completed != out.failed.total) {
      std::printf("  (%s: %zu/%zu flows completed)\n", to_string(mode),
                  out.failed.completed, out.failed.total);
    }
    exec::ResultRow row;
    row.set("mode", to_string(mode))
        .set("base_worst_fct_s", out.base.worst_fct)
        .set("base_p99_fct_s", out.base.p99_fct)
        .set("fail_worst_fct_s", out.failed.worst_fct)
        .set("fail_p99_fct_s", out.failed.p99_fct)
        .set("inflation", out.failed.worst_fct / out.base.worst_fct)
        .set("repair_lag_s", out.repair_lag_s)
        .set("pairs_invalidated", out.pairs_invalidated)
        .set("pairs_retained", out.pairs_retained)
        .set("reroutes", out.sched.reroutes)
        .set("black_holed", out.sched.black_holed)
        .set("completed", out.failed.completed)
        .set("total_flows", out.failed.total);
    runner.add_row(std::move(row));
  }

  // ---- repair pricing: incremental vs full recompile, converter rewire ---
  bench::print_header(
      "Repair pricing (global mode, one dead core column)",
      "incremental plan_repair vs recompiling the whole mode; converter\n"
      "rewire re-homes the servers stranded on the dead cores (one OCS\n"
      "pass) — repair-by-reconfiguration, the flat-tree-native action.\n"
      "Cache fully warm (every switch pair), 64 controllers.");
  ControllerOptions full_opts;  // count_rules on: full-compile rule totals
  full_opts.delay.controllers = 64;
  full_opts.sink = runner.obs();
  const Controller pricing{FlatTree{params}, full_opts};
  bench::print_row({"repair", "conv", "rules-del", "rules-add", "ocs(s)",
                    "total(s)"},
                   11);
  for (const bool rewire : {false, true}) {
    CompiledMode live = pricing.compile_uniform(PodMode::kGlobal);
    const std::uint64_t full_rules = live.total_rules();
    const FailureSet column = core_column_failure(live.graph(), 0,
                                                  column_width);
    RepairOptions repair_options;
    repair_options.allow_converter_rewire = rewire;
    const RepairPlan plan = pricing.plan_repair(live, column, repair_options);
    bench::print_row({rewire ? "rewire" : "reroute",
                      std::to_string(plan.converters_changed),
                      std::to_string(plan.rules_deleted),
                      std::to_string(plan.rules_added),
                      bench::fmt(plan.ocs_s, 3), bench::fmt(plan.total_s(), 3)},
                     11);
    exec::ResultRow row;
    row.set("repair", rewire ? "rewire" : "reroute")
        .set("converters_changed", plan.converters_changed)
        .set("rules_deleted", plan.rules_deleted)
        .set("rules_added", plan.rules_added)
        .set("ocs_s", plan.ocs_s)
        .set("total_s", plan.total_s());
    runner.add_row(std::move(row));
    if (!rewire) {
      std::printf("  full recompile would rewrite ~%llu rules; incremental "
                  "touches %llu\n",
                  static_cast<unsigned long long>(2 * full_rules),
                  static_cast<unsigned long long>(plan.rules_deleted +
                                                  plan.rules_added));
    }
  }
  std::printf(
      "\nexpected shape: Clos mode funnels all inter-pod traffic through the\n"
      "halved core layer, so its worst flow stays throttled for the whole\n"
      "outage; global mode reroutes onto side/local circuits (and rescues\n"
      "its core-attached servers by rewire) after one repair lag, so its\n"
      "worst-case FCT inflates less under the same schedule; repair cost\n"
      "scales with the evicted pairs, not the network size.\n");
}

}  // namespace
}  // namespace flattree

int main(int argc, char** argv) {
  flattree::run(argc, argv);
  return 0;
}
