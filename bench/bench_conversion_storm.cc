// Conversion under fire: what the storm-tolerant staged executor (live
// re-planning + per-Pod stage checkpoints + controller failover) buys over
// the full-rollback baseline when data-plane failures, control-plane loss
// and a controller death land on an in-flight conversion.
//
// Scenario: the testbed flat-tree carries a permutation workload while
// every pod converts Clos -> global. A seeded link-flap storm (distinct
// fabric links on installed routes, each failing and recovering inside the
// conversion window) runs concurrently with the step schedule, swept
// against control loss, a permanent OCS partition fault, and a primary
// controller kill. Two protocols run every scenario:
//
//   storm-tolerant: staged + stage checkpoints (gradual per-Pod stages,
//     each a durable rollback point) + live re-planning (broken routes
//     re-route at the fold boundary; recoveries reconcile back to plan).
//   full-rollback: the staged protocol alone — no checkpoints (any
//     exhausted step rolls back to the origin) and no re-planning (routes
//     broken by the storm stay dark until the next flip or the recovery).
//
// Each cell replays its execution timeline through the fluid simulator
// (FCT inflation vs an undisturbed run) plus a packet-level spot check,
// and verifies the terminal contract: once the storm has drained, the
// fabric runs bit-for-bit one of the checkpointed modes (graph, configs
// and canonical routes). The claims to check: the storm-tolerant executor
// holds blackhole time to the physical fold->re-plan gap (strictly below
// the baseline's, which dangles broken routes), converts or lands on a
// late checkpoint where the baseline gives the whole conversion back, and
// survives failover without mixed-epoch state.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/util.h"
#include "control/conversion_exec.h"
#include "control/controller.h"
#include "core/flat_tree.h"
#include "net/failures.h"
#include "sim/packet.h"
#include "traffic/patterns.h"

namespace flattree {
namespace {

struct RunStats {
  double worst_fct{0.0};
  double p99_fct{0.0};
  std::size_t completed{0};
  std::size_t total{0};
};

RunStats summarize(const std::vector<FluidFlowResult>& results) {
  RunStats stats;
  std::vector<double> fcts;
  for (const FluidFlowResult& r : results) {
    ++stats.total;
    if (!r.completed) continue;
    ++stats.completed;
    fcts.push_back(r.fct_s());
  }
  for (double f : fcts) stats.worst_fct = std::max(stats.worst_fct, f);
  stats.p99_fct = bench::percentile(fcts, 99.0);
  return stats;
}

// Distinct fabric links that installed routes of the tracked pairs cross —
// flapping one is guaranteed to hit live traffic.
std::vector<LinkId> route_fabric_links(
    const CompiledMode& mode,
    const std::vector<std::pair<NodeId, NodeId>>& pairs, std::size_t want) {
  const Graph& g = mode.graph();
  std::vector<bool> taken(g.link_count(), false);
  std::vector<LinkId> picked;
  for (const auto& [src, dst] : pairs) {
    if (picked.size() >= want) break;
    for (const Path& path : mode.paths().server_paths(src, dst)) {
      if (picked.size() >= want) break;
      for (std::size_t h = 1; h + 2 < path.size(); ++h) {
        const NodeId a = path[h];
        const NodeId b = path[h + 1];
        for (std::uint32_t i = 0; i < g.link_count(); ++i) {
          if (taken[i]) continue;
          const Link& l = g.link(LinkId{i});
          if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) {
            taken[i] = true;
            picked.push_back(LinkId{i});
            break;
          }
        }
        if (picked.size() >= want) break;
      }
    }
  }
  return picked;
}

// One flap per link: fails staggered across [t0, t0 + 0.55 * window], each
// outage lasting six gaps (adjacent outages overlap). Long outages matter:
// they straddle several step boundaries, so a re-planning executor gets to
// cut the exposure short, while a non-re-planning one eats the whole
// physical window. Every recovery still lands well before either protocol
// finishes, so the terminal bit-for-bit contract is testable.
FailureSchedule make_flap_storm(const std::vector<LinkId>& links, double t0,
                                double window) {
  FailureSchedule storm;
  const double gap = 0.55 * window / static_cast<double>(links.size() + 1);
  for (std::size_t i = 0; i < links.size(); ++i) {
    const double t = t0 + gap * static_cast<double>(i + 1);
    storm.fail_at(t, FailureSet{{links[i]}, {}});
    storm.recover_at(t + 6.0 * gap, FailureSet{{links[i]}, {}});
  }
  return storm;
}

// The terminal contract, checked per cell: graph, configs and installed
// routes bit-for-bit equal to the terminal checkpoint's mode.
bool terminal_is_checkpoint(const Controller& ctl,
                            const ExecutionReport& report) {
  if (report.checkpoints.empty() || report.timeline.empty()) return false;
  const CheckpointRecord& terminal = report.checkpoints.back();
  if (report.terminal_configs != terminal.configs) return false;
  const auto multiset = [](const Graph& g) {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
    for (std::uint32_t i = 0; i < g.link_count(); ++i) {
      const Link& l = g.link(LinkId{i});
      out.emplace_back(std::min(l.a.value(), l.b.value()),
                       std::max(l.a.value(), l.b.value()));
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  const Graph realized = ctl.tree().realize(terminal.configs);
  const TimelinePoint& last = report.timeline.back();
  if (multiset(*last.graph) != multiset(realized)) return false;
  return last.routes == terminal.routes;
}

struct Scenario {
  const char* name;
  bool storm{false};
  double loss{0.0};
  bool ocs_fault{false};
  bool kill_primary{false};
};

struct CellOutcome {
  ExecutionReport report;
  RunStats base;
  RunStats churn;
  bool terminal_ok{false};
  std::uint64_t packet_bytes_acked{0};
  std::size_t packet_completed{0};
  std::size_t packet_flows{0};
};

void run(int argc, char** argv) {
  exec::ExperimentRunner runner{
      bench::parse_runner_options("conversion_storm", argc, argv, 31)};

  FlatTreeParams params;
  params.clos = ClosParams::testbed();
  params.six_port_per_column = 1;
  params.four_port_per_column = 1;
  ControllerOptions opts;
  opts.count_rules = false;
  opts.sink = runner.obs();
  const Controller controller{FlatTree{params}, opts};

  Rng traffic_rng{runner.seed()};
  Workload flows =
      permutation_traffic(params.clos.total_servers(), traffic_rng);
  for (Flow& f : flows) f.bytes = 2e9;

  const double t0 = 0.1;
  const bool protocols[] = {true, false};  // storm-tolerant, full-rollback
  const Scenario scenarios[] = {
      {"calm", false, 0.0, false, false},
      {"flaps", true, 0.0, false, false},
      {"loss", true, 0.10, false, false},
      {"loss+ocs", true, 0.10, true, false},
      {"loss+kill", true, 0.10, false, true},
  };
  constexpr std::size_t kScenarios = 5;
  constexpr std::size_t kCells = 2 * kScenarios;

  // Calibration: the undisturbed executions fix the storm window, the
  // controller kill time and each protocol's final OCS partition index
  // (the injected permanent fault). Identical physical storm for both
  // protocols; the OCS fault targets each protocol's own last pass.
  const CompiledMode cal_from = controller.compile_uniform(PodMode::kClos);
  const CompiledMode cal_to = controller.compile_uniform(PodMode::kGlobal);
  const auto& cal_servers = cal_from.graph().servers();
  std::vector<std::pair<NodeId, NodeId>> cal_pairs;
  cal_pairs.reserve(flows.size());
  for (const Flow& f : flows) {
    cal_pairs.emplace_back(cal_servers[f.src], cal_servers[f.dst]);
  }
  double window[2] = {0.0, 0.0};
  std::uint32_t last_partition[2] = {0, 0};
  for (std::size_t pi = 0; pi < 2; ++pi) {
    ConversionExecOptions cal_opts;
    cal_opts.stage_checkpoints = protocols[pi];
    cal_opts.live_replanning = protocols[pi];
    cal_opts.seed = runner.seed();
    const ExecutionReport cal = ConversionExecutor{controller, cal_opts}
                                    .execute(cal_from, cal_to, cal_pairs,
                                             ConversionFaults{}, t0);
    for (const StepRecord& s : cal.steps) {
      if (s.kind == StepKind::kOcs && !s.rollback) {
        last_partition[pi] = std::max(last_partition[pi], s.partition);
      }
    }
    window[pi] = cal.finish_s - t0;
  }
  // The same physical flap storm drives both protocols, sized to the
  // shorter calm run so every recovery folds before either finishes; the
  // controller dies at 45% of each protocol's own calm duration.
  const std::vector<LinkId> victims =
      route_fabric_links(cal_from, cal_pairs, 12);
  const FailureSchedule storm =
      make_flap_storm(victims, t0, std::min(window[0], window[1]));
  const double kill_at[2] = {t0 + 0.45 * window[0], t0 + 0.45 * window[1]};

  bench::print_header(
      "Conversion under fire: storm-tolerant staged execution vs full "
      "rollback",
      "testbed flat-tree (24 servers), permutation traffic, 2 GB flows;\n"
      "every pod converts Clos -> global at t=0.1s while a seeded link-flap\n"
      "storm (12 distinct route-carrying fabric links, fail + recover inside\n"
      "the conversion window) runs concurrently. Scenarios: calm (no storm),\n"
      "flaps (storm, lossless control), loss (storm + 10% control loss),\n"
      "loss+ocs (+ a permanent OCS partition fault on the final pass),\n"
      "loss+kill (+ the primary controller dies mid-conversion).\n"
      "tolerant = per-Pod stage checkpoints + live re-planning;\n"
      "rollback = staged protocol, no checkpoints, no re-planning.\n"
      "terminal=ckpt verifies the fabric ended bit-for-bit on a checkpointed\n"
      "mode (graph + configs + canonical routes); blackhole in pair-seconds.");
  bench::print_row({"protocol", "scenario", "outcome", "stages", "blackhole",
                    "replans", "failovers", "inflation", "completed",
                    "terminal=ckpt"},
                   12);

  const std::vector<CellOutcome> outcomes = runner.timed_stage(
      "conversion_storm cells", [&] {
        return bench::parallel_replicates(
            runner.pool(), kCells, [&](std::size_t cell) {
              const bool tolerant = protocols[cell / kScenarios];
              const Scenario& sc = scenarios[cell % kScenarios];
              const CompiledMode from =
                  controller.compile_uniform(PodMode::kClos);
              const CompiledMode to =
                  controller.compile_uniform(PodMode::kGlobal);
              const auto& servers = from.graph().servers();
              std::vector<std::pair<NodeId, NodeId>> pairs;
              pairs.reserve(flows.size());
              for (const Flow& f : flows) {
                pairs.emplace_back(servers[f.src], servers[f.dst]);
              }

              ConversionExecOptions exec_opts;
              exec_opts.stage_checkpoints = tolerant;
              exec_opts.live_replanning = tolerant;
              exec_opts.channel.drop_probability = sc.loss;
              exec_opts.seed = runner.seed();
              exec_opts.sink = runner.obs();
              const ConversionExecutor executor{controller, exec_opts};

              ConversionFaults faults;
              if (sc.ocs_fault) {
                faults.fail_ocs_partitions = {last_partition[tolerant ? 0 : 1]};
              }
              if (sc.kill_primary) {
                faults.kill_primary_at_s = kill_at[tolerant ? 0 : 1];
              }

              CellOutcome out;
              out.report = executor.execute_under_storm(
                  from, to, pairs, sc.storm ? storm : FailureSchedule{},
                  faults, t0);
              out.terminal_ok = terminal_is_checkpoint(controller, out.report);

              FluidOptions fluid_opts;
              fluid_opts.sink = runner.obs();
              FluidSimulator baseline{
                  from.graph(),
                  [&](NodeId src, NodeId dst, std::uint32_t) {
                    return from.paths().server_paths(src, dst);
                  },
                  fluid_opts};
              out.base = summarize(baseline.run(flows));
              out.churn = summarize(
                  run_fluid_with_conversion(out.report, flows, fluid_opts));

              PacketSim sim;
              sim.set_network(*out.report.timeline.front().graph);
              out.packet_flows = 8;
              for (std::size_t i = 0; i < out.packet_flows; ++i) {
                const Flow& f = flows[i];
                sim.add_flow(f.src, f.dst, 2e6, 0.0,
                             conversion_paths_for(out.report, f));
              }
              drive_packet_sim(sim, out.report, flows,
                               out.report.finish_s + 5.0);
              for (std::size_t i = 0; i < out.packet_flows; ++i) {
                const auto fi = static_cast<std::uint32_t>(i);
                out.packet_bytes_acked += sim.flow_bytes_acked(fi);
                if (sim.flow_completed(fi)) ++out.packet_completed;
              }
              return out;
            });
      });

  double tolerant_storm_blackhole = 0.0;
  double baseline_storm_blackhole = 0.0;
  for (std::size_t cell = 0; cell < kCells; ++cell) {
    const CellOutcome& out = outcomes[cell];
    const bool tolerant = protocols[cell / kScenarios];
    const Scenario& sc = scenarios[cell % kScenarios];
    const ExecutionReport& rep = out.report;
    if (sc.storm) {
      (tolerant ? tolerant_storm_blackhole : baseline_storm_blackhole) +=
          rep.total_blackhole_s;
    }
    bench::print_row(
        {tolerant ? "tolerant" : "rollback", sc.name, to_string(rep.outcome),
         std::to_string(rep.stages_committed) + "/" +
             std::to_string(rep.stages_total),
         bench::fmt(rep.total_blackhole_s, 3), std::to_string(rep.replans),
         std::to_string(rep.failovers),
         bench::fmt(out.churn.worst_fct / out.base.worst_fct, 2) + "x",
         std::to_string(out.churn.completed) + "/" +
             std::to_string(out.churn.total),
         out.terminal_ok ? "yes" : "NO"},
        12);
    exec::ResultRow row;
    row.set("protocol", tolerant ? "storm-tolerant" : "full-rollback")
        .set("scenario", sc.name)
        .set("loss", sc.loss)
        .set("outcome", to_string(rep.outcome))
        .set("stages_total", rep.stages_total)
        .set("stages_committed", rep.stages_committed)
        .set("checkpoints", rep.checkpoints.size())
        .set("terminal_is_checkpoint", out.terminal_ok)
        .set("total_blackhole_s", rep.total_blackhole_s)
        .set("max_pair_blackhole_s", rep.max_pair_blackhole_s)
        .set("duration_s", rep.finish_s - rep.start_s)
        .set("steps", rep.steps.size())
        .set("retries", rep.retries)
        .set("messages_dropped", rep.messages_dropped)
        .set("replans", rep.replans)
        .set("pairs_replanned", rep.pairs_replanned)
        .set("failovers", rep.failovers)
        .set("steps_reissued", rep.steps_reissued)
        .set("violations", rep.violations.size())
        .set("base_worst_fct_s", out.base.worst_fct)
        .set("churn_worst_fct_s", out.churn.worst_fct)
        .set("churn_p99_fct_s", out.churn.p99_fct)
        .set("inflation", out.churn.worst_fct / out.base.worst_fct)
        .set("completed", out.churn.completed)
        .set("total_flows", out.churn.total)
        .set("packet_bytes_acked", out.packet_bytes_acked)
        .set("packet_completed", out.packet_completed)
        .set("packet_flows", out.packet_flows);
    runner.add_row(std::move(row));
  }

  std::printf(
      "\nexpected shape: every cell ends terminal=ckpt — the fabric always\n"
      "lands bit-for-bit on a checkpointed mode once the storm drains. The\n"
      "tolerant executor re-plans at every fold, so its blackhole time is\n"
      "only the fold->re-plan gap (%.3f pair-s across storm cells), strictly\n"
      "below rollback's (%.3f pair-s), which dangles broken routes until a\n"
      "flip or the recovery. When control loss exhausts a step, tolerant\n"
      "keeps its committed stages and lands partial — a hybrid mode from the\n"
      "convertibility spectrum — where rollback under the OCS fault gives\n"
      "the whole conversion back to the origin. The controller kill costs\n"
      "one takeover plus one re-issued step and never mixes epochs.\n",
      tolerant_storm_blackhole, baseline_storm_blackhole);
  if (!(tolerant_storm_blackhole < baseline_storm_blackhole)) {
    std::printf("WARNING: tolerant blackhole not below baseline\n");
  }
}

}  // namespace
}  // namespace flattree

int main(int argc, char** argv) {
  flattree::run(argc, argv);
  return 0;
}
