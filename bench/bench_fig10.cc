// Figure 10 (+ §5.3): run-time topology conversion on the 20-switch /
// 24-server testbed network. Every server sends iPerf-style persistent
// MPTCP flows (k = 4) to its same-index counterparts in the other three
// Pods; we report the summed goodput in 0.5 s bins while the controller
// converts Clos -> Global -> Local at run time, with the conversion
// blackout taken from the Table 3 delay model.
//
// Scaling note: links run at 1 Gb/s instead of 10 Gb/s to keep the
// packet-level event count tractable; throughputs scale linearly, so the
// paper's 145 Gb/s (Clos/local) and 185 Gb/s (global) correspond to 14.5
// and 18.5 Gb/s here, and the +27.6% core-bandwidth gain carries over. The
// timeline is compressed (6 s per mode instead of ~100 s).
#include <cstdio>
#include <vector>

#include "bench/util.h"
#include "control/controller.h"
#include "sim/packet.h"
#include "topo/params.h"

namespace flattree {
namespace {

void run(exec::RunnerOptions runner_options) {
  exec::ExperimentRunner runner{std::move(runner_options)};
  FlatTreeParams params;
  params.clos = ClosParams::testbed();
  params.clos.link_bps = 1e9;  // scaled from 10G (see header note)
  params.six_port_per_column = 1;
  params.four_port_per_column = 1;
  ControllerOptions options;
  options.k_global = options.k_local = options.k_clos = 4;
  const Controller ctl{FlatTree{params}, options};

  const CompiledMode clos = ctl.compile_uniform(PodMode::kClos);
  const CompiledMode global = ctl.compile_uniform(PodMode::kGlobal);
  const CompiledMode local = ctl.compile_uniform(PodMode::kLocal);

  bench::print_header(
      "Figure 10: testbed core bandwidth across run-time conversions",
      "Clos [0,6s) -> Global [6,12s) -> Local [12,18s); 0.5 s bins;\n"
      "1 Gb/s links (x10 for the paper's 10 Gb/s numbers).");

  PacketSim sim;
  sim.attach_obs(runner.obs());
  sim.set_network(clos.graph());
  // iPerf pattern: server s -> same index in each other pod (6 per pod).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  for (std::uint32_t s = 0; s < 24; ++s) {
    for (std::uint32_t stride = 1; stride < 4; ++stride) {
      const std::uint32_t dst = (s + 6 * stride) % 24;
      pairs.emplace_back(s, dst);
      sim.add_flow(s, dst, 0, 0.0,
                   clos.paths().server_paths(NodeId{s}, NodeId{dst}));
    }
  }

  const auto convert_to = [&](const CompiledMode& from,
                              const CompiledMode& to) {
    const ConversionReport report = ctl.plan_conversion(from, to);
    std::printf("# conversion: %u converters, %llu rules del, %llu add, "
                "blackout %.0f ms\n",
                report.converters_changed,
                static_cast<unsigned long long>(report.rules_deleted),
                static_cast<unsigned long long>(report.rules_added),
                report.total_s() * 1e3);
    sim.apply_conversion(
        to.graph(),
        [&](std::uint32_t flow) {
          return to.paths().server_paths(NodeId{pairs[flow].first},
                                         NodeId{pairs[flow].second});
        },
        report.total_s());
  };

  std::printf("\ntime_s  total_goodput_gbps  mode\n");
  std::uint64_t last_bytes = 0;
  double segment_sum[3] = {0, 0, 0};
  int segment_bins[3] = {0, 0, 0};
  const char* mode_name[3] = {"clos", "global", "local"};
  for (int bin = 1; bin <= 36; ++bin) {
    const double t = bin * 0.5;
    if (bin == 13) convert_to(clos, global);   // at 6.0 s
    if (bin == 25) convert_to(global, local);  // at 12.0 s
    sim.run_until(t);
    const std::uint64_t bytes = sim.total_bytes_acked();
    const double gbps = static_cast<double>(bytes - last_bytes) * 8 / 0.5 / 1e9;
    last_bytes = bytes;
    const int segment = (bin - 1) / 12;
    // Skip the first 2.5 s of each segment (ramp) in the segment average.
    if ((bin - 1) % 12 >= 5) {
      segment_sum[segment] += gbps;
      ++segment_bins[segment];
    }
    std::printf("%5.1f   %8.2f            %s\n", t, gbps, mode_name[segment]);
    exec::ResultRow row;
    row.set("time_s", t)
        .set("goodput_gbps", gbps)
        .set("mode", mode_name[segment]);
    runner.add_row(std::move(row));
  }

  std::printf("\nsteady-state averages (Gb/s at 1G links; x10 for paper):\n");
  for (int s = 0; s < 3; ++s) {
    std::printf("  %-7s %.2f\n", mode_name[s],
                segment_sum[s] / segment_bins[s]);
  }
  const double clos_avg = segment_sum[0] / segment_bins[0];
  const double global_avg = segment_sum[1] / segment_bins[1];
  std::printf("  global/clos gain: %+.1f%%  (paper: +27.6%%)\n",
              (global_avg / clos_avg - 1) * 100);
  std::printf("  oversubscribed Clos bound: 24 x 1G / 1.5 = 16.00 Gb/s\n");
  runner.add_meta("clos_avg_gbps", clos_avg);
  runner.add_meta("global_avg_gbps", global_avg);
  runner.add_meta("local_avg_gbps", segment_sum[2] / segment_bins[2]);
  runner.add_meta("global_over_clos_gain_pct",
                  (global_avg / clos_avg - 1) * 100);
}

}  // namespace
}  // namespace flattree

int main(int argc, char** argv) {
  flattree::run(
      flattree::bench::parse_runner_options("fig10", argc, argv, 20170821));
  return 0;
}
