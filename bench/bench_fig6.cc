// Figure 6: average flow throughput of k-shortest-path routing + MPTCP
// (4/8/12 concurrent paths) against the LP bounds ("LP minimum" and "LP
// average"), normalized by LP minimum, under the four synthetic traffic
// patterns of §5.1.
//
// Scaling note: the paper runs the full patterns on topo-1/2/5 (1728-8192
// servers), which is far beyond a dense-simplex LP. Sub-sampling flows
// would unload the fabric and flatten all the ratios, so instead we run the
// FULL patterns on proportionally downscaled layouts that preserve each
// topology's structure (same oversubscription split, Pod structure, and
// flat-tree conversion):
//   topo-1-mini  4:1 at the edge only   (128 servers)
//   topo-2-mini  proportional downscale (96 servers)
//   topo-5-mini  2:1 edge + 2:1 agg     (128 servers)
// Expected shape (paper): LP average is the tallest bar; MPTCP with 8 paths
// approaches it and 12 adds nothing; 4 paths lag; all >= the LP-minimum
// baseline of 1.0.
#include <cstdio>
#include <string>

#include "bench/util.h"
#include "core/flat_tree.h"
#include "lp/mcf.h"
#include "topo/params.h"
#include "traffic/patterns.h"

namespace flattree {
namespace {

ClosParams topo1_mini() {
  // 4 Pods x (2 edge + 2 agg), 16 servers/edge (4:1), 8 cores.
  return ClosParams{4, 2, 2, 4, 16, 4, 8, 4};
}
ClosParams topo2_mini() {
  // Proportional downscale of topo-1-mini (3 Pods, 96 servers).
  return ClosParams{3, 2, 2, 4, 16, 4, 8, 3};
}
ClosParams topo5_mini() {
  // Oversubscription split across edge (2:1) and agg (2:1).
  return ClosParams{4, 2, 2, 8, 16, 4, 8, 4};
}

Workload make_traffic(int id, const ClosParams& clos, Rng& rng) {
  const std::uint32_t servers = clos.total_servers();
  const std::uint32_t per_pod = clos.servers_per_edge * clos.edge_per_pod;
  switch (id) {
    case 1: return permutation_traffic(servers, rng);
    case 2: return pod_stride_traffic(servers, per_pod);
    case 3: return hot_spot_traffic(servers, per_pod / 2);  // paper: 100
    case 4: return many_to_many_traffic(servers, 8);        // paper: 20
  }
  return {};
}

void run_topology(const std::string& label, const ClosParams& clos,
                  PodMode mode) {
  const FlatTree tree{FlatTreeParams::defaults_for(clos)};
  const Graph g = tree.realize_uniform(mode);

  std::printf("\n--- %s ---\n", label.c_str());
  bench::print_row({"traffic", "LPmin", "LPavg", "MPTCP-4", "MPTCP-8",
                    "MPTCP-12"},
                   12);
  for (int traffic = 1; traffic <= 4; ++traffic) {
    Rng rng{static_cast<std::uint64_t>(traffic) * 97 + 5};
    const Workload flows = make_traffic(traffic, clos, rng);

    const McfInstance lp_instance = bench::mcf_for(g, flows, 8);
    const McfResult lp_min = solve_lp_min(lp_instance);
    const McfResult lp_avg = solve_lp_avg(lp_instance);
    const double base = lp_min.avg_rate;
    if (!lp_min.feasible || base <= 0) {
      bench::print_row({"traffic-" + std::to_string(traffic), "infeasible"});
      continue;
    }
    std::vector<std::string> cells{"traffic-" + std::to_string(traffic),
                                   bench::fmt(1.0),
                                   bench::fmt(lp_avg.avg_rate / base)};
    for (const std::uint32_t k : {4u, 8u, 12u}) {
      const McfResult mptcp = solve_mptcp_model(bench::mcf_for(g, flows, k));
      cells.push_back(bench::fmt(mptcp.avg_rate / base));
    }
    bench::print_row(cells, 12);
  }
}

void run() {
  bench::print_header(
      "Figure 6: avg flow throughput normalized against LP minimum",
      "MPTCP = LP-min base + residual filling over k-shortest paths; LP bounds\n"
      "from the built-in simplex; full patterns on downscaled layouts\n"
      "(see header comment).");
  run_topology("topo-1-mini global (Fig 6a)", topo1_mini(), PodMode::kGlobal);
  run_topology("topo-1-mini local (Fig 6b)", topo1_mini(), PodMode::kLocal);
  run_topology("topo-2-mini global (Fig 6c)", topo2_mini(), PodMode::kGlobal);
  run_topology("topo-5-mini global (Fig 6d)", topo5_mini(), PodMode::kGlobal);
  std::printf(
      "\npaper shape: LP avg tallest; MPTCP-8 ~ MPTCP-12 > MPTCP-4 >= 1.\n");
}

}  // namespace
}  // namespace flattree

int main() {
  flattree::run();
  return 0;
}
