// Figure 6: average flow throughput of k-shortest-path routing + MPTCP
// (4/8/12 concurrent paths) against the LP bounds ("LP minimum" and "LP
// average"), normalized by LP minimum, under the four synthetic traffic
// patterns of §5.1.
//
// Scaling note: the paper runs the full patterns on topo-1/2/5 (1728-8192
// servers), which is far beyond a dense-simplex LP. Sub-sampling flows
// would unload the fabric and flatten all the ratios, so instead we run the
// FULL patterns on proportionally downscaled layouts that preserve each
// topology's structure (same oversubscription split, Pod structure, and
// flat-tree conversion):
//   topo-1-mini  4:1 at the edge only   (128 servers)
//   topo-2-mini  proportional downscale (96 servers)
//   topo-5-mini  2:1 edge + 2:1 agg     (128 servers)
// Expected shape (paper): LP average is the tallest bar; MPTCP with 8 paths
// approaches it and 12 adds nothing; 4 paths lag; all >= the LP-minimum
// baseline of 1.0.
//
// Execution: the 4 topologies x 4 traffic patterns fan across the exec pool
// as independent cells (each cell also fans its KSP precompute); results
// land in BENCH_fig6.json. The per-traffic workload seed is
// `traffic * 97 + base_seed`, so the default --seed 5 reproduces the
// seed-state numbers byte-for-byte.
#include <cstdio>
#include <string>

#include "bench/util.h"
#include "core/flat_tree.h"
#include "lp/mcf.h"
#include "topo/params.h"
#include "traffic/patterns.h"

namespace flattree {
namespace {

ClosParams topo1_mini() {
  // 4 Pods x (2 edge + 2 agg), 16 servers/edge (4:1), 8 cores.
  return ClosParams{4, 2, 2, 4, 16, 4, 8, 4};
}
ClosParams topo2_mini() {
  // Proportional downscale of topo-1-mini (3 Pods, 96 servers).
  return ClosParams{3, 2, 2, 4, 16, 4, 8, 3};
}
ClosParams topo5_mini() {
  // Oversubscription split across edge (2:1) and agg (2:1).
  return ClosParams{4, 2, 2, 8, 16, 4, 8, 4};
}

Workload make_traffic(int id, const ClosParams& clos, Rng& rng) {
  const std::uint32_t servers = clos.total_servers();
  const std::uint32_t per_pod = clos.servers_per_edge * clos.edge_per_pod;
  switch (id) {
    case 1: return permutation_traffic(servers, rng);
    case 2: return pod_stride_traffic(servers, per_pod);
    case 3: return hot_spot_traffic(servers, per_pod / 2);  // paper: 100
    case 4: return many_to_many_traffic(servers, 8);        // paper: 20
  }
  return {};
}

// One experiment cell: a (topology, traffic pattern) pair. All four LP /
// MPTCP solves for the cell run inside it.
struct CellResult {
  bool feasible{false};
  double lp_avg_ratio{0.0};
  double mptcp_ratio[3]{};  // k = 4 / 8 / 12
};

CellResult run_cell(const Graph& g, const ClosParams& clos, int traffic,
                    std::uint64_t base_seed, exec::ThreadPool* pool,
                    const obs::ObsSink& sink) {
  Rng rng{static_cast<std::uint64_t>(traffic) * 97 + base_seed};
  const Workload flows = make_traffic(traffic, clos, rng);

  const McfInstance lp_instance = bench::mcf_for(g, flows, 8, pool, sink);
  const McfResult lp_min = solve_lp_min(lp_instance);
  const McfResult lp_avg = solve_lp_avg(lp_instance);
  const double base = lp_min.avg_rate;
  CellResult result;
  if (!lp_min.feasible || base <= 0) return result;
  result.feasible = true;
  result.lp_avg_ratio = lp_avg.avg_rate / base;
  const std::uint32_t ks[] = {4u, 8u, 12u};
  for (std::size_t i = 0; i < 3; ++i) {
    const McfResult mptcp =
        solve_mptcp_model(bench::mcf_for(g, flows, ks[i], pool, sink));
    result.mptcp_ratio[i] = mptcp.avg_rate / base;
  }
  return result;
}

void run(int argc, char** argv) {
  exec::ExperimentRunner runner{
      bench::parse_runner_options("fig6", argc, argv, 5)};
  bench::print_header(
      "Figure 6: avg flow throughput normalized against LP minimum",
      "MPTCP = LP-min base + residual filling over k-shortest paths; LP bounds\n"
      "from the built-in simplex; full patterns on downscaled layouts\n"
      "(see header comment).");

  struct Topology {
    std::string label;
    ClosParams clos;
    PodMode mode;
  };
  const Topology topologies[] = {
      {"topo-1-mini global (Fig 6a)", topo1_mini(), PodMode::kGlobal},
      {"topo-1-mini local (Fig 6b)", topo1_mini(), PodMode::kLocal},
      {"topo-2-mini global (Fig 6c)", topo2_mini(), PodMode::kGlobal},
      {"topo-5-mini global (Fig 6d)", topo5_mini(), PodMode::kGlobal},
  };
  std::vector<Graph> graphs;
  for (const Topology& t : topologies) {
    const FlatTree tree{FlatTreeParams::defaults_for(t.clos)};
    graphs.push_back(tree.realize_uniform(t.mode));
  }

  // 4 topologies x 4 traffic patterns, fanned as 16 independent cells.
  std::vector<CellResult> cells(16);
  runner.timed_stage("fig6 grid", [&] {
    exec::parallel_for(runner.pool(), cells.size(), [&](std::size_t i) {
      const std::size_t topo = i / 4;
      const int traffic = static_cast<int>(i % 4) + 1;
      cells[i] = run_cell(graphs[topo], topologies[topo].clos, traffic,
                          runner.seed(), runner.pool(), runner.obs());
    });
  });

  for (std::size_t topo = 0; topo < 4; ++topo) {
    std::printf("\n--- %s ---\n", topologies[topo].label.c_str());
    bench::print_row({"traffic", "LPmin", "LPavg", "MPTCP-4", "MPTCP-8",
                      "MPTCP-12"},
                     12);
    for (int traffic = 1; traffic <= 4; ++traffic) {
      const CellResult& cell = cells[topo * 4 + (traffic - 1)];
      const std::string name = "traffic-" + std::to_string(traffic);
      exec::ResultRow row;
      row.set("topology", topologies[topo].label)
          .set("traffic", traffic)
          .set("feasible", cell.feasible);
      if (!cell.feasible) {
        bench::print_row({name, "infeasible"});
        runner.add_row(std::move(row));
        continue;
      }
      bench::print_row({name, bench::fmt(1.0), bench::fmt(cell.lp_avg_ratio),
                        bench::fmt(cell.mptcp_ratio[0]),
                        bench::fmt(cell.mptcp_ratio[1]),
                        bench::fmt(cell.mptcp_ratio[2])},
                       12);
      row.set("lp_avg_ratio", cell.lp_avg_ratio)
          .set("mptcp4_ratio", cell.mptcp_ratio[0])
          .set("mptcp8_ratio", cell.mptcp_ratio[1])
          .set("mptcp12_ratio", cell.mptcp_ratio[2]);
      runner.add_row(std::move(row));
    }
  }
  std::printf(
      "\npaper shape: LP avg tallest; MPTCP-8 ~ MPTCP-12 > MPTCP-4 >= 1.\n");
}

}  // namespace
}  // namespace flattree

int main(int argc, char** argv) {
  flattree::run(argc, argv);
  return 0;
}
