// Substitution validation: the large-scale experiments (Figures 6-8) run on
// the flow-level fluid simulator because packet-level simulation cannot
// reach 4096 servers. This bench justifies that substitution: the same
// finite-flow workload runs through BOTH simulators on the testbed network
// in all three modes, and the quantity the experiments rely on — the
// relative ranking (and rough ratios) of modes — must agree.
#include <cstdio>
#include <vector>

#include "bench/util.h"
#include "core/flat_tree.h"
#include "net/rng.h"
#include "sim/packet.h"
#include "topo/params.h"

namespace flattree {
namespace {

Workload make_workload(const ClosParams& clos) {
  // Cross-pod-biased finite flows (the regime where modes differ most;
  // pod-local pairs are mixed in at 30%).
  Rng rng{404};
  Workload flows;
  const std::uint32_t servers = clos.total_servers();
  const std::uint32_t per_pod = clos.servers_per_edge * clos.edge_per_pod;
  for (int i = 0; i < 90; ++i) {
    const std::uint32_t src = static_cast<std::uint32_t>(rng.next_below(servers));
    std::uint32_t dst;
    if (rng.next_double() < 0.3) {
      do {
        dst = (src / per_pod) * per_pod +
              static_cast<std::uint32_t>(rng.next_below(per_pod));
      } while (dst == src);
    } else {
      do {
        dst = static_cast<std::uint32_t>(rng.next_below(servers));
      } while (dst == src || dst / per_pod == src / per_pod);
    }
    Flow f;
    f.src = src;
    f.dst = dst;
    f.bytes = 2e6 * (1 + rng.next_below(4));
    f.start_s = rng.next_double() * 0.5;
    flows.push_back(f);
  }
  return flows;
}

void run() {
  FlatTreeParams params;
  params.clos = ClosParams::testbed();
  params.clos.link_bps = 200e6;  // scaled links keep the packet run short
  params.six_port_per_column = 1;
  params.four_port_per_column = 1;
  const FlatTree tree{params};
  const Workload flows = make_workload(params.clos);

  bench::print_header(
      "Substitution validation: packet-level vs fluid mean FCT (ms)",
      "same 90-flow workload, testbed network, k = 4 + MPTCP;\n"
      "the simulators must agree on magnitudes and near-tie structure.");

  bench::print_row({"mode", "fluid-mean", "packet-mean", "ratio"}, 14);
  for (const PodMode mode : {PodMode::kClos, PodMode::kLocal, PodMode::kGlobal}) {
    const Graph g = tree.realize_uniform(mode);
    // Fluid.
    FluidSimulator fluid{g, bench::ksp_provider(g, 4)};
    const auto fluid_results = fluid.run(flows);
    double fluid_total = 0;
    for (const auto& r : fluid_results) fluid_total += r.fct_s();
    const double fluid_mean = fluid_total / flows.size() * 1e3;

    // Packet.
    PacketSim packet;
    packet.set_network(g);
    PathCache cache{g, 4};
    for (const Flow& f : flows) {
      packet.add_flow(f.src, f.dst, f.bytes, f.start_s,
                      cache.server_paths(NodeId{f.src}, NodeId{f.dst}));
    }
    packet.run_until(60.0);
    double packet_total = 0;
    std::size_t done = 0;
    for (std::uint32_t i = 0; i < flows.size(); ++i) {
      if (!packet.flow_completed(i)) continue;
      packet_total += packet.flow_finish_time(i) - flows[i].start_s;
      ++done;
    }
    const double packet_mean = packet_total / static_cast<double>(done) * 1e3;
    bench::print_row({to_string(mode), bench::fmt(fluid_mean, 1),
                      bench::fmt(packet_mean, 1),
                      bench::fmt(packet_mean / fluid_mean, 2)},
                     14);
  }
  std::printf(
      "\nexpected: packet-level FCTs run ~1.1-1.3x the fluid values (slow\n"
      "start, queueing, retransmissions, RTT) with per-mode ratios within a\n"
      "few percent of each other — at testbed scale the three modes are\n"
      "near-ties for mean FCT (the decisive mode differences appear under\n"
      "core saturation, validated packet-level by bench_fig10).\n");
}

}  // namespace
}  // namespace flattree

int main() {
  flattree::run();
  return 0;
}
