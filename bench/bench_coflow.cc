// Extension bench: coflow completion time (CCT) by topology mode.
//
// The paper's Hadoop-1 trace comes from the Coflow benchmark, whose native
// metric is not per-flow FCT but the completion time of each job's whole
// shuffle (its coflow). This bench runs a stream of MapReduce-style jobs on
// the quarter-scale topo-1 network and reports CCT percentiles per flat-tree
// mode plus the random-graph reference — the application-level view of the
// same Figure 8 comparison.
#include <cstdio>
#include <vector>

#include "bench/util.h"
#include "core/flat_tree.h"
#include "topo/random_graph.h"
#include "traffic/apps.h"

namespace flattree {
namespace {

void run() {
  const ClosParams clos{8, 4, 4, 4, 16, 4, 16, 8};  // quarter topo-1
  CoflowJobsParams jobs;
  jobs.num_servers = clos.total_servers();
  jobs.jobs = 60;
  jobs.mappers_per_job = 12;
  jobs.reducers_per_job = 6;
  jobs.bytes_per_pair = 16e6;
  jobs.jobs_per_s = 40;
  const Workload flows = coflow_jobs(jobs);

  bench::print_header(
      "Extension: coflow completion time by mode (ms)",
      "60 MapReduce-style jobs (12x6 shuffles, random placement) on the\n"
      "quarter-scale topo-1 network; CCT = a job's slowest transfer.");

  const FlatTree tree{FlatTreeParams::defaults_for(clos)};
  struct System {
    const char* name;
    Graph graph;
  };
  System systems[] = {
      {"ft-clos", tree.realize_uniform(PodMode::kClos)},
      {"ft-local", tree.realize_uniform(PodMode::kLocal)},
      {"ft-global", tree.realize_uniform(PodMode::kGlobal)},
      {"random-graph", build_random_graph_from_clos(clos, 77)},
  };

  bench::print_row({"network", "p50", "p90", "p99", "mean", "jobs-done"}, 14);
  for (System& system : systems) {
    FluidOptions options;
    options.max_time_s = 60;
    FluidSimulator sim{system.graph, bench::ksp_provider(system.graph, 8),
                       options};
    const auto results = sim.run(flows);
    const auto coflows = coflow_completion_times(flows, results);
    std::vector<double> cct_ms;
    std::size_t done = 0;
    for (const CoflowStats& c : coflows) {
      if (!c.completed) continue;
      cct_ms.push_back(c.cct_s * 1e3);
      ++done;
    }
    bench::print_row({system.name, bench::fmt(bench::percentile(cct_ms, 50)),
                      bench::fmt(bench::percentile(cct_ms, 90)),
                      bench::fmt(bench::percentile(cct_ms, 99)),
                      bench::fmt(bench::mean(cct_ms)),
                      std::to_string(done) + "/" +
                          std::to_string(coflows.size())},
                     14);
  }
  std::printf(
      "\nexpected: the Figure 8 ordering carries to the job level — the\n"
      "flattened modes finish whole shuffles sooner than Clos mode.\n");
}

}  // namespace
}  // namespace flattree

int main() {
  flattree::run();
  return 0;
}
