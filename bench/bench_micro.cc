// Micro-benchmarks of the substrates (google-benchmark): graph realization,
// Yen's k-shortest paths, the simplex solver, the max-min allocator, the
// fluid simulator event loop, and the packet simulator event rate.
#include <benchmark/benchmark.h>

#include "bench/util.h"
#include "control/controller.h"
#include "core/flat_tree.h"
#include "lp/mcf.h"
#include "sim/packet.h"
#include "topo/clos.h"
#include "traffic/traces.h"
#include "traffic/patterns.h"

namespace flattree {
namespace {

void BM_RealizeGlobalMode(benchmark::State& state) {
  const FlatTree tree{FlatTreeParams::defaults_for(ClosParams::topo1())};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.realize_uniform(PodMode::kGlobal));
  }
}
BENCHMARK(BM_RealizeGlobalMode);

void BM_YenKsp(benchmark::State& state) {
  const FlatTree tree{FlatTreeParams::defaults_for(ClosParams::topo1())};
  const Graph g = tree.realize_uniform(PodMode::kGlobal);
  const KspSolver solver{g};
  const auto edges = g.nodes_with_role(NodeRole::kEdge);
  const std::uint32_t k = static_cast<std::uint32_t>(state.range(0));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solver.k_shortest_paths(edges[i % 64], edges[(i * 7 + 40) % 128], k));
    ++i;
  }
}
BENCHMARK(BM_YenKsp)->Arg(4)->Arg(8)->Arg(16);

void BM_SimplexLpMin(benchmark::State& state) {
  const FlatTree tree{FlatTreeParams::defaults_for(ClosParams::topo2())};
  const Graph g = tree.realize_uniform(PodMode::kGlobal);
  Rng rng{5};
  const Workload flows = bench::subsample(
      permutation_traffic(tree.clos().total_servers(), rng),
      static_cast<std::size_t>(state.range(0)), 1);
  const McfInstance instance = bench::mcf_for(g, flows, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_lp_min(instance));
  }
}
BENCHMARK(BM_SimplexLpMin)->Arg(16)->Arg(48)->Unit(benchmark::kMillisecond);

void BM_MaxMinFill(benchmark::State& state) {
  const FlatTree tree{FlatTreeParams::defaults_for(ClosParams::topo1())};
  const Graph g = tree.realize_uniform(PodMode::kGlobal);
  Rng rng{5};
  const Workload flows = bench::subsample(
      permutation_traffic(tree.clos().total_servers(), rng),
      static_cast<std::size_t>(state.range(0)), 1);
  const McfInstance instance = bench::mcf_for(g, flows, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_max_min_fill(instance));
  }
}
BENCHMARK(BM_MaxMinFill)->Arg(128)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_FluidTraceFct(benchmark::State& state) {
  const FlatTree tree{FlatTreeParams::defaults_for(ClosParams::topo2())};
  const Graph g = tree.realize_uniform(PodMode::kGlobal);
  TraceParams params = TraceParams::web();
  params.duration_s = 0.1;
  params.flows_per_s = 2000;
  const Workload flows = generate_trace(tree.clos(), params);
  for (auto _ : state) {
    FluidSimulator sim{g, bench::ksp_provider(g, 8)};
    benchmark::DoNotOptimize(sim.run(flows));
  }
  state.counters["flows"] = static_cast<double>(flows.size());
}
BENCHMARK(BM_FluidTraceFct)->Unit(benchmark::kMillisecond);

void BM_PacketSimEventRate(benchmark::State& state) {
  FlatTreeParams params;
  params.clos = ClosParams::testbed();
  params.clos.link_bps = 1e9;
  params.six_port_per_column = 1;
  params.four_port_per_column = 1;
  const FlatTree tree{params};
  const Graph g = tree.realize_uniform(PodMode::kGlobal);
  for (auto _ : state) {
    PacketSim sim;
    sim.set_network(g);
    PathCache cache{g, 4};
    for (std::uint32_t s = 0; s < 12; ++s) {
      sim.add_flow(s, (s + 6) % 24, 0, 0.0,
                   cache.server_paths(NodeId{s}, NodeId{(s + 6) % 24}));
    }
    sim.run_until(0.1);
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(sim.events_processed()),
        benchmark::Counter::kIsIterationInvariantRate);
  }
}
BENCHMARK(BM_PacketSimEventRate)->Unit(benchmark::kMillisecond);

void BM_ControllerCompile(benchmark::State& state) {
  FlatTreeParams params;
  params.clos = ClosParams::testbed();
  params.six_port_per_column = 1;
  params.four_port_per_column = 1;
  ControllerOptions options;
  options.k_global = 4;
  const Controller ctl{FlatTree{params}, options};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctl.compile_uniform(PodMode::kGlobal));
  }
}
BENCHMARK(BM_ControllerCompile)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace flattree

BENCHMARK_MAIN();
