// Table 2: the six evaluated flat-tree layouts, with derived Pod structure
// and flat-tree conversion audits (converter counts from the default (m, n)
// and the structural properties of the wiring).
#include <cstdio>

#include "bench/util.h"
#include "core/flat_tree.h"
#include "net/stats.h"
#include "topo/params.h"

namespace flattree {
namespace {

void run() {
  bench::print_header(
      "Table 2: evaluated flat-tree topologies",
      "Columns mirror the paper; (m,n) are the default converter rows per\n"
      "edge column; 'uniform' verifies wiring Property 1 in global mode.");
  bench::print_row({"id", "#ES(up,dn)", "#AS(up,dn)", "#CS(dn)", "OR@ES",
                    "OR@AS", "#Server", "(m,n)", "uniform"},
                   12);
  for (const char* name :
       {"topo-1", "topo-2", "topo-3", "topo-4", "topo-5", "topo-6"}) {
    const ClosParams p = ClosParams::preset(name);
    const FlatTreeParams ft = FlatTreeParams::defaults_for(p);
    const FlatTree tree{ft};
    const Graph global = tree.realize_uniform(PodMode::kGlobal);
    const auto per_core = servers_per_switch(global, NodeRole::kCore);
    const auto [min_it, max_it] =
        std::minmax_element(per_core.begin(), per_core.end());
    const bool uniform = *min_it == *max_it;

    const std::uint32_t agg_down =
        p.edge_per_pod * p.edge_uplinks / p.agg_per_pod;
    char es[32], as[32], cs[16], mn[16];
    std::snprintf(es, sizeof(es), "%u(%u,%u)", p.total_edges(),
                  p.edge_uplinks, p.servers_per_edge);
    std::snprintf(as, sizeof(as), "%u(%u,%u)", p.total_aggs(), p.agg_uplinks,
                  agg_down);
    std::snprintf(cs, sizeof(cs), "%u(%u)", p.cores, p.core_ports);
    std::snprintf(mn, sizeof(mn), "(%u,%u)", ft.m(), ft.n());
    bench::print_row({name, es, as, cs, bench::fmt(p.edge_oversubscription(), 0),
                      bench::fmt(p.agg_oversubscription(), 0),
                      std::to_string(p.total_servers()), mn,
                      uniform ? "yes" : "no"},
                     12);
  }
  std::printf(
      "\npaper Table 2 rows: topo-1 128(8,32) 128(8,8) 64(16) 4 1 4096;\n"
      "topo-2..topo-6 per Table 2 (topo-6 AS read as (16,32), DESIGN.md).\n");
}

}  // namespace
}  // namespace flattree

int main() {
  flattree::run();
  return 0;
}
