// Figure 11: application-level benefit of convertibility — Spark torrent
// broadcast (Word2Vec iterations) and Hadoop/Tez Sort shuffle on the
// testbed, under flat-tree Global / Local / Clos modes. Reported per mode:
// average data-flow read duration (per-transfer completion time including
// serialization overhead) and communication-phase duration.
//
// The workloads run through the fluid simulator on the exact testbed
// graphs (24 servers; master = server 0, workers = 1..23). The paper's
// shape: Global reduces read time ~10% and phase duration ~8-16% vs Clos,
// with Local in between and close to Global at this small scale.
#include <cstdio>
#include <string>

#include "bench/util.h"
#include "core/flat_tree.h"
#include "topo/params.h"
#include "traffic/apps.h"

namespace flattree {
namespace {

struct AppResult {
  double read_s{0.0};
  double phase_s{0.0};
};

AppResult run_app(const Graph& g, const Workload& flows, std::uint32_t k) {
  FluidSimulator sim{g, bench::ksp_provider(g, k)};
  const auto results = sim.run(flows);
  double read_total = 0;
  double first_start = 1e18, last_finish = 0;
  std::size_t done = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].completed) continue;
    // End-to-end data read time = transfer + ser/deser overhead (§5.4).
    read_total += results[i].fct_s() + flows[i].dep_delay_s;
    first_start = std::min(first_start, results[i].start_s);
    last_finish = std::max(last_finish, results[i].finish_s);
    ++done;
  }
  AppResult r;
  r.read_s = read_total / static_cast<double>(done);
  r.phase_s = last_finish - first_start;
  return r;
}

void run() {
  FlatTreeParams params;
  params.clos = ClosParams::testbed();
  params.six_port_per_column = 1;
  params.four_port_per_column = 1;
  const FlatTree tree{params};

  BroadcastParams bparams;
  bparams.master = 0;
  bparams.num_workers = 23;
  bparams.block_bytes = 256e6;
  bparams.iterations = 3;
  const Workload broadcast = spark_broadcast(bparams);

  ShuffleParams sparams;
  sparams.first_worker = 1;
  sparams.num_mappers = 23;
  sparams.num_reducers = 8;
  sparams.bytes_per_pair = 128e6;
  const Workload shuffle = hadoop_shuffle(sparams);

  bench::print_header(
      "Figure 11: Spark broadcast & Hadoop shuffle on the testbed",
      "avg data-flow read duration and communication-phase duration (s)\n"
      "per flat-tree mode; k = 4 paths + MPTCP as in §5.3.");

  bench::print_row({"mode", "bcast-read", "bcast-phase", "shuffle-read",
                    "shuffle-phase"},
                   14);
  double clos_vals[4] = {0, 0, 0, 0};
  for (const PodMode mode : {PodMode::kGlobal, PodMode::kLocal, PodMode::kClos}) {
    const Graph g = tree.realize_uniform(mode);
    const AppResult b = run_app(g, broadcast, 4);
    const AppResult s = run_app(g, shuffle, 4);
    if (mode == PodMode::kClos) {
      clos_vals[0] = b.read_s;
      clos_vals[1] = b.phase_s;
      clos_vals[2] = s.read_s;
      clos_vals[3] = s.phase_s;
    }
    bench::print_row({to_string(mode), bench::fmt(b.read_s, 3),
                      bench::fmt(b.phase_s, 3), bench::fmt(s.read_s, 3),
                      bench::fmt(s.phase_s, 3)},
                     14);
  }
  // Relative improvements of global mode over Clos.
  const Graph g = tree.realize_uniform(PodMode::kGlobal);
  const AppResult b = run_app(g, broadcast, 4);
  const AppResult s = run_app(g, shuffle, 4);
  std::printf("\nglobal vs clos: bcast read %+.1f%%, bcast phase %+.1f%%, "
              "shuffle read %+.1f%%, shuffle phase %+.1f%%\n",
              (b.read_s / clos_vals[0] - 1) * 100,
              (b.phase_s / clos_vals[1] - 1) * 100,
              (s.read_s / clos_vals[2] - 1) * 100,
              (s.phase_s / clos_vals[3] - 1) * 100);
  std::printf("paper: read -10%% / phase -16%% (bcast); read -10.5%% / "
              "phase -8%% (shuffle)\n");
}

}  // namespace
}  // namespace flattree

int main() {
  flattree::run();
  return 0;
}
