// Extension bench (the paper's deferred failure evaluation, §4.2.1
// footnote 2): throughput degradation under random fabric-link failures for
// flat-tree Clos / local / global modes and the random-graph reference,
// all on the same device budget.
//
// The claim to check: "throughput degrades more gracefully in random graph
// networks than in fat-tree under failure... because flat-tree approximates
// random graph networks, we expect flat-tree to be resilient to failure as
// well." Reported: permutation-traffic throughput (max-min over 8-shortest
// paths) of the WORST flow vs failure fraction, normalized to each
// network's failure-free value, averaged over 3 failure seeds.
#include <cstdio>
#include <numeric>

#include "bench/util.h"
#include "lp/mcf.h"
#include "core/flat_tree.h"
#include "net/failures.h"
#include "topo/random_graph.h"
#include "traffic/patterns.h"

namespace flattree {
namespace {

// Worst-flow (max-min) throughput: the resilience question is whether an
// unlucky flow collapses, not whether the aggregate shrinks — aggregate
// numbers can even rise under failures when pruned detours reduce
// allocator waste.
double worst_flow(const Graph& g, const Workload& flows) {
  return solve_max_min_fill(bench::mcf_for(g, flows, 8)).min_rate;
}

void run() {
  const ClosParams clos{8, 4, 4, 4, 8, 4, 16, 8};  // 256 servers, 2:1 edge
  FlatTreeParams params;
  params.clos = clos;
  params.six_port_per_column = 2;
  params.four_port_per_column = 2;
  const FlatTree tree{params};

  struct System {
    const char* name;
    Graph graph;
  };
  System systems[] = {
      {"ft-clos", tree.realize_uniform(PodMode::kClos)},
      {"ft-local", tree.realize_uniform(PodMode::kLocal)},
      {"ft-global", tree.realize_uniform(PodMode::kGlobal)},
      {"random-graph", build_random_graph_from_clos(clos, 99)},
  };

  bench::print_header(
      "Extension: throughput retention under random fabric failures",
      "permutation traffic; worst-flow (max-min) throughput normalized to\n"
      "the same network without failures; mean of 3 failure draws.");

  Rng traffic_rng{17};
  const Workload flows = permutation_traffic(clos.total_servers(), traffic_rng);

  // Each cell reports mean (kept/total) over the failure draws. Draws that
  // partition the servers are excluded from the mean, which biases the
  // retention number upward — the (kept/total) suffix makes the survivorship
  // visible instead of silently averaging only the lucky draws.
  bench::print_row({"fail%", "ft-clos", "ft-local", "ft-global",
                    "random-graph"},
                   14);
  double baseline[4];
  for (int s = 0; s < 4; ++s) baseline[s] = worst_flow(systems[s].graph, flows);

  for (const double fraction : {0.0, 0.05, 0.10, 0.15, 0.20}) {
    std::vector<std::string> cells{bench::fmt(fraction * 100, 0)};
    for (int s = 0; s < 4; ++s) {
      double ratio_sum = 0;
      int draws = 0;
      int total = 0;
      for (std::uint64_t seed : {101u, 202u, 303u}) {
        Rng rng{seed};
        ++total;
        const Graph degraded = remove_links(
            systems[s].graph,
            sample_fabric_failures(systems[s].graph, fraction, rng));
        if (!servers_connected(degraded)) continue;  // partition: skip draw
        ratio_sum += worst_flow(degraded, flows) / baseline[s];
        ++draws;
      }
      char cell[32];
      if (draws > 0) {
        std::snprintf(cell, sizeof(cell), "%s (%d/%d)",
                      bench::fmt(ratio_sum / draws, 3).c_str(), draws, total);
      } else {
        std::snprintf(cell, sizeof(cell), "part (0/%d)", total);
      }
      cells.emplace_back(cell);
    }
    bench::print_row(cells, 14);
  }
  std::printf(
      "\nexpected shape (paper footnote 2 / Jellyfish): the flattened modes\n"
      "and the random graph keep their worst flow alive while Clos mode's\n"
      "worst flow collapses as failures concentrate on some rack's uplinks.\n");
}

}  // namespace
}  // namespace flattree

int main() {
  flattree::run();
  return 0;
}
